//! A deterministic, zero-dependency fast hasher for simulator hot paths.
//!
//! The simulator's inner loops key hash maps by small dense-ish integers
//! (word addresses, line addresses, version numbers). The standard library's
//! default `SipHash-1-3` is DoS-resistant but costs tens of cycles per
//! lookup, which is pure overhead here: every key is produced by the
//! simulator itself, never by an adversary. This module provides a
//! multiply-xor hasher in the spirit of `FxHash` (the rustc hasher) with two
//! properties the simulator needs:
//!
//! * **fast** — one wrapping multiply and one xor-rotate per 8-byte chunk;
//! * **deterministic** — no per-process random seed, so iteration-free uses
//!   of [`FastMap`] behave identically across runs and hosts (the repo's
//!   reproducibility tests compare simulator output byte-for-byte).
//!
//! Nothing here changes *observable* simulation results: maps are only read
//! by key, never iterated in result-affecting order.
//!
//! # Example
//!
//! ```
//! use tpi_mem::FastMap;
//!
//! let mut versions: FastMap<u64, u64> = FastMap::default();
//! versions.insert(0x40, 3);
//! assert_eq!(versions.get(&0x40), Some(&3));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Odd multiplier from the `FxHash` family (derived from the golden ratio);
/// chosen so every input bit influences the high output bits after the
/// final multiply.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic hasher.
///
/// See the [module docs](self) for when this is appropriate: simulator
/// internal keys only, never attacker-controlled input.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add_chunk(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            self.add_chunk(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Mix in the length so "ab" and "ab\0" differ.
            self.add_chunk(u64::from_le_bytes(buf) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_chunk(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_chunk(u64::from(n));
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_chunk(u64::from(n));
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_chunk(n as u64);
    }
}

/// `BuildHasher` for [`FastHasher`]; usable anywhere
/// `HashMap::with_hasher` is.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed by the deterministic [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` keyed by the deterministic [`FastHasher`].
pub type FastSet<T> = HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FastHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_across_builders() {
        let b1 = FastBuildHasher::default();
        let b2 = FastBuildHasher::default();
        for k in [0u64, 1, 42, u64::MAX, 0xdead_beef] {
            assert_eq!(b1.hash_one(k), b2.hash_one(k));
        }
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let b = FastBuildHasher::default();
        assert_ne!(b.hash_one(1u64), b.hash_one(2u64));
        assert_ne!(b.hash_one(0u64), b.hash_one(1u64 << 32));
    }

    #[test]
    fn tail_bytes_and_length_matter() {
        assert_ne!(hash_of(b"ab"), hash_of(b"ab\0"));
        assert_ne!(hash_of(b"abcdefgh"), hash_of(b"abcdefg"));
        assert_ne!(hash_of(b""), hash_of(b"\0"));
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        let mut s: FastSet<(u32, i64)> = FastSet::default();
        for i in 0..1000u64 {
            m.insert(i * 7, i as u32);
            s.insert((i as u32, -(i as i64)));
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 7)), Some(&(i as u32)));
            assert!(s.contains(&(i as u32, -(i as i64))));
        }
        assert!(!s.contains(&(1, 1)));
    }
}
