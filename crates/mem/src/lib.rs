//! Memory-system vocabulary shared by every crate in the TPI coherence study.
//!
//! The paper models a distributed shared-memory machine built from
//! off-the-shelf microprocessors (a Cray-T3D-like system). All crates agree
//! on a *word-granular* view of memory: the unit of compiler analysis and of
//! TPI timetag bookkeeping is a 32-bit word, while caches transfer multi-word
//! lines. This crate defines the address arithmetic, processor/epoch
//! identifiers, the compiler-to-hardware read annotations, and the layout of
//! program arrays onto the flat shared address space.
//!
//! # Example
//!
//! ```
//! use tpi_mem::{LineGeometry, WordAddr};
//!
//! let geom = LineGeometry::new(4); // 4 words (16 bytes) per line
//! let addr = WordAddr(13);
//! assert_eq!(geom.line_of(addr).0, 3);
//! assert_eq!(geom.word_in_line(addr), 1);
//! ```

#![warn(missing_docs)]

pub mod fasthash;
pub mod layout;

pub use fasthash::{FastBuildHasher, FastHasher, FastMap, FastSet};
pub use layout::{ArrayDecl, ArrayId, MemLayout, Sharing};

use std::fmt;

/// Identifier of one processor (node) of the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcId(pub u32);

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A simulation time point or duration, in processor clock cycles.
pub type Cycle = u64;

/// Runtime epoch number.
///
/// An *epoch* is the paper's unit of coherence enforcement: one parallel
/// (DOALL) loop or one serial program region. The machine-wide epoch counter
/// increments at every epoch boundary; this type is the unbounded software
/// view of that counter (the hardware truncates it to the timetag width, see
/// `tpi-cache`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Epoch(pub u64);

impl Epoch {
    /// The epoch `n` boundaries after `self`.
    #[must_use]
    pub fn plus(self, n: u64) -> Epoch {
        Epoch(self.0 + n)
    }

    /// Number of boundaries from `earlier` to `self`, or `None` if `earlier`
    /// is actually later.
    #[must_use]
    pub fn distance_from(self, earlier: Epoch) -> Option<u64> {
        self.0.checked_sub(earlier.0)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

/// Word-granular address in the flat shared address space.
///
/// The paper's machine uses 32-bit words; `WordAddr(n)` names the `n`-th word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WordAddr(pub u64);

impl WordAddr {
    /// Byte address of this word (words are 4 bytes).
    #[must_use]
    pub fn byte_addr(self) -> u64 {
        self.0 * WORD_BYTES as u64
    }
}

impl fmt::Display for WordAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{:#x}", self.0)
    }
}

/// Line-granular address: `WordAddr / words_per_line`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{:#x}", self.0)
    }
}

/// Bytes per machine word (the paper simulates 32-bit words).
pub const WORD_BYTES: usize = 4;

/// Cache-line geometry: how word addresses map onto lines.
///
/// Line decomposition (`line_of` / `word_in_line`) runs on every simulated
/// memory access, so the power-of-two line size is kept as a shift amount
/// and the division/modulo become shift/mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineGeometry {
    words_per_line: u32,
    /// `log2(words_per_line)`, derived in [`LineGeometry::new`].
    shift: u32,
}

impl LineGeometry {
    /// Creates a geometry with `words_per_line` words per cache line.
    ///
    /// # Panics
    ///
    /// Panics if `words_per_line` is zero or not a power of two.
    #[must_use]
    pub fn new(words_per_line: u32) -> Self {
        assert!(
            words_per_line.is_power_of_two(),
            "words_per_line must be a nonzero power of two, got {words_per_line}"
        );
        LineGeometry {
            words_per_line,
            shift: words_per_line.trailing_zeros(),
        }
    }

    /// Words per cache line.
    #[must_use]
    pub fn words_per_line(self) -> u32 {
        self.words_per_line
    }

    /// Bytes per cache line.
    #[must_use]
    pub fn line_bytes(self) -> usize {
        self.words_per_line as usize * WORD_BYTES
    }

    /// The line containing `addr`.
    #[must_use]
    pub fn line_of(self, addr: WordAddr) -> LineAddr {
        LineAddr(addr.0 >> self.shift)
    }

    /// Offset of `addr` within its line, in words.
    #[must_use]
    pub fn word_in_line(self, addr: WordAddr) -> u32 {
        (addr.0 & u64::from(self.words_per_line - 1)) as u32
    }

    /// First word of `line`.
    #[must_use]
    pub fn first_word(self, line: LineAddr) -> WordAddr {
        WordAddr(line.0 << self.shift)
    }

    /// Iterator over all word addresses of `line`.
    pub fn words_of(self, line: LineAddr) -> impl Iterator<Item = WordAddr> {
        let base = self.first_word(line).0;
        (0..u64::from(self.words_per_line)).map(move |i| WordAddr(base + i))
    }
}

/// Compiler annotation attached to a load, consumed by the coherence hardware.
///
/// This is the interface between the Polaris-style reference-marking pass
/// (`tpi-compiler`) and the cache/protocol models (`tpi-proto`): the compiler
/// classifies every read reference and the hardware interprets the class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadKind {
    /// The compiler proved the reference can never observe stale data; the
    /// cache may satisfy it from any valid copy.
    Plain,
    /// A potentially-stale reference under the TPI scheme. The hardware
    /// treats it as a hit only if the word's timetag `t` satisfies
    /// `t >= current_epoch - distance`; `distance == 0` is the fully
    /// conservative marking (only data produced or fetched in the current
    /// epoch may be reused).
    TimeRead {
        /// Compiler-proven number of epoch boundaries since the most recent
        /// epoch in which another processor may have written the datum.
        distance: u32,
    },
    /// A potentially-stale reference under the software cache-bypass (SC)
    /// scheme: always served from memory.
    Bypass,
    /// A read inside a lock-guarded critical section. Data exchanged
    /// through critical sections is serialized by the lock, not by epoch
    /// boundaries, so timetags say nothing about its freshness: the HSCD
    /// schemes must fetch it from memory uncached (the paper's Section 5
    /// treatment), while directory schemes read it coherently as usual.
    Critical,
}

impl ReadKind {
    /// Whether the compiler marked this reference as potentially stale.
    #[must_use]
    pub fn is_marked(self) -> bool {
        !matches!(self, ReadKind::Plain)
    }
}

impl fmt::Display for ReadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadKind::Plain => write!(f, "read"),
            ReadKind::TimeRead { distance } => write!(f, "time-read(d={distance})"),
            ReadKind::Bypass => write!(f, "bypass-read"),
            ReadKind::Critical => write!(f, "critical-read"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_geometry_maps_addresses() {
        let g = LineGeometry::new(4);
        assert_eq!(g.line_of(WordAddr(0)), LineAddr(0));
        assert_eq!(g.line_of(WordAddr(3)), LineAddr(0));
        assert_eq!(g.line_of(WordAddr(4)), LineAddr(1));
        assert_eq!(g.word_in_line(WordAddr(7)), 3);
        assert_eq!(g.first_word(LineAddr(2)), WordAddr(8));
        assert_eq!(g.line_bytes(), 16);
    }

    #[test]
    fn words_of_enumerates_whole_line() {
        let g = LineGeometry::new(8);
        let words: Vec<_> = g.words_of(LineAddr(3)).collect();
        assert_eq!(words.len(), 8);
        assert_eq!(words[0], WordAddr(24));
        assert_eq!(words[7], WordAddr(31));
        for w in words {
            assert_eq!(g.line_of(w), LineAddr(3));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn line_geometry_rejects_non_power_of_two() {
        let _ = LineGeometry::new(3);
    }

    #[test]
    fn epoch_distance() {
        assert_eq!(Epoch(7).distance_from(Epoch(3)), Some(4));
        assert_eq!(Epoch(3).distance_from(Epoch(7)), None);
        assert_eq!(Epoch(3).plus(2), Epoch(5));
    }

    #[test]
    fn read_kind_marking() {
        assert!(!ReadKind::Plain.is_marked());
        assert!(ReadKind::TimeRead { distance: 1 }.is_marked());
        assert!(ReadKind::Bypass.is_marked());
        assert!(ReadKind::Critical.is_marked());
        assert_eq!(ReadKind::Critical.to_string(), "critical-read");
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert_eq!(ProcId(3).to_string(), "P3");
        assert_eq!(Epoch(9).to_string(), "E9");
        assert_eq!(WordAddr(16).to_string(), "w0x10");
        assert_eq!(LineAddr(4).to_string(), "l0x4");
        assert_eq!(
            ReadKind::TimeRead { distance: 2 }.to_string(),
            "time-read(d=2)"
        );
    }

    #[test]
    fn word_byte_addr() {
        assert_eq!(WordAddr(5).byte_addr(), 20);
    }
}
