//! Placement of program arrays onto the flat shared word-address space.
//!
//! The compiler analyses in `tpi-compiler` reason about arrays symbolically;
//! the simulator needs concrete word addresses. A [`MemLayout`] assigns every
//! declared array a line-aligned base address (row-major element order) so
//! that both views agree. Shared arrays live in the globally-visible segment;
//! private data is modelled as processor-local and never enters the coherence
//! protocols (its cost is folded into per-statement compute cycles by the
//! trace generator).

use crate::{LineGeometry, WordAddr};
use std::fmt;

/// Identifier of a declared array, dense from zero per program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub u32);

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// Whether a variable participates in interprocessor sharing.
///
/// Early compiler-directed machines (C.mmp, Cedar) used exactly this binary
/// attribute; the paper's BASE scheme caches only `Private` data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sharing {
    /// Visible to all processors; subject to coherence.
    Shared,
    /// Local to one processor; always cacheable, never stale.
    Private,
}

/// Declaration of one program array: a name, a shape, and a sharing class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    name: String,
    dims: Vec<u64>,
    sharing: Sharing,
}

impl ArrayDecl {
    /// Declares an array.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or any extent is zero.
    #[must_use]
    pub fn new(name: impl Into<String>, dims: Vec<u64>, sharing: Sharing) -> Self {
        assert!(!dims.is_empty(), "array must have at least one dimension");
        assert!(dims.iter().all(|&d| d > 0), "array extents must be nonzero");
        ArrayDecl {
            name: name.into(),
            dims,
            sharing,
        }
    }

    /// The array's source-level name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Extents of each dimension, outermost first (row-major).
    #[must_use]
    pub fn dims(&self) -> &[u64] {
        &self.dims
    }

    /// Sharing class.
    #[must_use]
    pub fn sharing(&self) -> Sharing {
        self.sharing
    }

    /// Total number of elements (= words; one word per element).
    #[must_use]
    pub fn len_words(&self) -> u64 {
        self.dims.iter().product()
    }
}

/// Concrete placement of a set of arrays in the shared address space.
///
/// Bases are aligned to cache-line boundaries so that distinct arrays never
/// share a line (the paper's false-sharing effects arise *within* an array,
/// not from accidental co-location of unrelated variables).
#[derive(Debug, Clone)]
pub struct MemLayout {
    decls: Vec<ArrayDecl>,
    bases: Vec<WordAddr>,
    total_words: u64,
    geometry: LineGeometry,
}

impl MemLayout {
    /// Lays out `decls` consecutively, each base aligned to `geometry` lines.
    #[must_use]
    pub fn new(decls: Vec<ArrayDecl>, geometry: LineGeometry) -> Self {
        let words_per_line = u64::from(geometry.words_per_line());
        let mut bases = Vec::with_capacity(decls.len());
        let mut next = 0u64;
        for d in &decls {
            bases.push(WordAddr(next));
            let len = d.len_words();
            next += len.div_ceil(words_per_line) * words_per_line;
        }
        MemLayout {
            decls,
            bases,
            total_words: next,
            geometry,
        }
    }

    /// The declarations in layout order.
    #[must_use]
    pub fn decls(&self) -> &[ArrayDecl] {
        &self.decls
    }

    /// Declaration of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn decl(&self, id: ArrayId) -> &ArrayDecl {
        &self.decls[id.0 as usize]
    }

    /// Base word address of `id`.
    #[must_use]
    pub fn base(&self, id: ArrayId) -> WordAddr {
        self.bases[id.0 as usize]
    }

    /// Line geometry this layout was aligned to.
    #[must_use]
    pub fn geometry(&self) -> LineGeometry {
        self.geometry
    }

    /// Total footprint in words (including alignment padding).
    #[must_use]
    pub fn total_words(&self) -> u64 {
        self.total_words
    }

    /// Word address of element `indices` of array `id`, row-major.
    ///
    /// # Panics
    ///
    /// Panics if the index rank mismatches the declaration or any index is
    /// out of bounds (the validator in `tpi-ir` guarantees in-bounds access
    /// for well-formed programs; out-of-bounds here indicates an IR bug).
    #[must_use]
    pub fn addr(&self, id: ArrayId, indices: &[i64]) -> WordAddr {
        let decl = self.decl(id);
        assert_eq!(
            indices.len(),
            decl.dims.len(),
            "rank mismatch addressing {}: got {} indices for {} dims",
            decl.name,
            indices.len(),
            decl.dims.len()
        );
        let mut offset = 0u64;
        for (&ix, &dim) in indices.iter().zip(&decl.dims) {
            assert!(
                ix >= 0 && (ix as u64) < dim,
                "index {ix} out of bounds 0..{dim} for array {}",
                decl.name
            );
            offset = offset * dim + ix as u64;
        }
        WordAddr(self.base(id).0 + offset)
    }

    /// The array containing `addr`, if any (None for padding words).
    #[must_use]
    pub fn array_of(&self, addr: WordAddr) -> Option<ArrayId> {
        // bases are sorted; find the last base <= addr.
        let idx = match self.bases.binary_search_by(|b| b.0.cmp(&addr.0)) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let within = addr.0 - self.bases[idx].0;
        (within < self.decls[idx].len_words()).then_some(ArrayId(idx as u32))
    }

    /// Sharing class of `addr` (padding counts as `Shared`, conservatively).
    #[must_use]
    pub fn sharing_of(&self, addr: WordAddr) -> Sharing {
        self.array_of(addr)
            .map_or(Sharing::Shared, |id| self.decl(id).sharing())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> MemLayout {
        MemLayout::new(
            vec![
                ArrayDecl::new("a", vec![10], Sharing::Shared),
                ArrayDecl::new("b", vec![3, 4], Sharing::Shared),
                ArrayDecl::new("p", vec![5], Sharing::Private),
            ],
            LineGeometry::new(4),
        )
    }

    #[test]
    fn bases_are_line_aligned_and_disjoint() {
        let l = layout();
        assert_eq!(l.base(ArrayId(0)), WordAddr(0));
        // "a" has 10 words -> padded to 12.
        assert_eq!(l.base(ArrayId(1)), WordAddr(12));
        // "b" has 12 words exactly.
        assert_eq!(l.base(ArrayId(2)), WordAddr(24));
        assert_eq!(l.total_words(), 32);
        for id in 0..3 {
            assert_eq!(l.base(ArrayId(id)).0 % 4, 0);
        }
    }

    #[test]
    fn row_major_addressing() {
        let l = layout();
        assert_eq!(l.addr(ArrayId(0), &[0]), WordAddr(0));
        assert_eq!(l.addr(ArrayId(0), &[9]), WordAddr(9));
        assert_eq!(l.addr(ArrayId(1), &[0, 0]), WordAddr(12));
        assert_eq!(l.addr(ArrayId(1), &[1, 0]), WordAddr(16));
        assert_eq!(l.addr(ArrayId(1), &[2, 3]), WordAddr(23));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_index_panics() {
        let l = layout();
        let _ = l.addr(ArrayId(0), &[10]);
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn rank_mismatch_panics() {
        let l = layout();
        let _ = l.addr(ArrayId(1), &[1]);
    }

    #[test]
    fn reverse_lookup() {
        let l = layout();
        assert_eq!(l.array_of(WordAddr(9)), Some(ArrayId(0)));
        assert_eq!(l.array_of(WordAddr(10)), None); // padding
        assert_eq!(l.array_of(WordAddr(12)), Some(ArrayId(1)));
        assert_eq!(l.array_of(WordAddr(28)), Some(ArrayId(2)));
        assert_eq!(l.array_of(WordAddr(29)), None); // past end of "p"
        assert_eq!(l.sharing_of(WordAddr(24)), Sharing::Private);
        assert_eq!(l.sharing_of(WordAddr(0)), Sharing::Shared);
        assert_eq!(l.sharing_of(WordAddr(10)), Sharing::Shared);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_dims_rejected() {
        let _ = ArrayDecl::new("x", vec![], Sharing::Shared);
    }
}
