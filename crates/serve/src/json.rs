//! A minimal JSON value type, parser, and writer.
//!
//! The workspace builds with no external dependencies, so the service
//! speaks JSON through this module instead of serde. The parser accepts
//! standard RFC 8259 documents (no comments, no trailing commas); the
//! writer produces deterministic output — object members render in
//! insertion order, and non-finite floats render as `null`.

use std::fmt;

/// A parsed (or under-construction) JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Integers up to 2^53 round-trip exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (`None` for other variants).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (rejects fractions, negatives, and values above 2^53).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n) {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Some(n as u64)
        } else {
            None
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Builds an object from `(key, value)` pairs, preserving order.
    #[must_use]
    pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// Renders the value as compact JSON text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Rust's shortest-representation Display for f64 is
                    // valid JSON for every finite value.
                    out.push_str(&n.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => out.push_str(&escape(s)),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape(k));
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        #[allow(clippy::cast_precision_loss)]
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        #[allow(clippy::cast_precision_loss)]
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(f64::from(n))
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

/// Escapes `s` as a JSON string literal, quotes included.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Where and why a parse failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the byte offset of the first
/// violation.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), ParseError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", expected as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let hi = self.hex4()?;
        // Surrogate pair handling: a high surrogate must be followed by
        // an escaped low surrogate.
        if (0xD800..=0xDBFF).contains(&hi) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..=0xDFFF).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_request_shaped_document() {
        let text = r#"{"kernels":["FLO52","OCEAN"],"schemes":["TPI"],"procs":[16],"seed":7}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("kernels").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(7));
        assert_eq!(v.render(), text);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "nul",
            "\"unterminated",
            "{\"a\":1} trailing",
            "1e999",
            "\"\\u12\"",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escapes_and_unescapes() {
        let v = parse(r#""a\"b\\c\nd\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{41}\u{1F600}"));
        assert_eq!(escape("x\"y\n"), r#""x\"y\n""#);
    }

    #[test]
    fn numbers_parse_and_render() {
        assert_eq!(parse("0.25").unwrap().as_f64(), Some(0.25));
        assert_eq!(parse("-3").unwrap().as_f64(), Some(-3.0));
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::from(12345u64).render(), "12345");
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }
}
