//! A deliberately small HTTP/1.1 subset over `std::net::TcpStream`: just
//! enough to parse the requests the service defines and to write
//! well-formed responses with keep-alive. No chunked bodies, no TLS, no
//! HTTP/2 — clients that need more sit behind a reverse proxy.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Hard limits on request framing.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Maximum number of header lines per request.
pub const MAX_HEADERS: usize = 64;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Request method, upper-case as received.
    pub method: String,
    /// Request target (path + optional query), as received.
    pub target: String,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The read timed out while waiting for a new request to begin (the
    /// connection is idle — the caller may poll its shutdown flag and
    /// keep waiting).
    Idle,
    /// The bytes on the wire are not a well-formed request (a 400).
    Malformed(String),
    /// The declared body exceeds the caller's limit (a 413).
    BodyTooLarge(usize),
    /// The socket failed mid-request.
    Io(io::Error),
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one CRLF- (or bare-LF-) terminated line without the terminator.
fn read_line(reader: &mut BufReader<&TcpStream>, first: bool) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                return Err(if first && line.is_empty() {
                    HttpError::Closed
                } else {
                    HttpError::Malformed("connection closed mid-request".into())
                });
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map_err(|_| HttpError::Malformed("non-UTF-8 header line".into()));
                }
                line.push(byte[0]);
                if line.len() > MAX_HEADER_LINE {
                    return Err(HttpError::Malformed("header line too long".into()));
                }
            }
            Err(e) if is_timeout(&e) => {
                return Err(if first && line.is_empty() {
                    HttpError::Idle
                } else {
                    HttpError::Malformed("timed out mid-request".into())
                });
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Reads one request. `max_body` bounds the accepted `Content-Length`.
///
/// # Errors
///
/// See [`HttpError`]; [`HttpError::Idle`] and [`HttpError::Closed`] are
/// normal between-request conditions, not faults.
pub fn read_request(
    reader: &mut BufReader<&TcpStream>,
    max_body: usize,
) -> Result<Request, HttpError> {
    let request_line = read_line(reader, true)?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_owned();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?
        .to_owned();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }

    let mut content_length: usize = 0;
    let mut keep_alive = true; // HTTP/1.1 default
    let mut expect_continue = false;
    for _ in 0..=MAX_HEADERS {
        let line = read_line(reader, false)?;
        if line.is_empty() {
            if content_length > max_body {
                return Err(HttpError::BodyTooLarge(content_length));
            }
            if expect_continue {
                // The body is small enough: invite the client to send it.
                let mut stream: &TcpStream = reader.get_ref();
                let _ = stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
            }
            let mut body = vec![0u8; content_length];
            if content_length > 0 {
                reader.read_exact(&mut body).map_err(|e| {
                    if is_timeout(&e) {
                        HttpError::Malformed("timed out reading body".into())
                    } else {
                        HttpError::Io(e)
                    }
                })?;
            }
            return Ok(Request {
                method,
                target,
                body,
                keep_alive,
            });
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("malformed header {line:?}")))?;
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {value:?}")))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("expect") && value.eq_ignore_ascii_case("100-continue")
        {
            expect_continue = true;
        }
    }
    Err(HttpError::Malformed("too many headers".into()))
}

/// Standard reason phrase for the statuses the service emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "",
    }
}

/// Writes one response. `extra_headers` lets a handler attach headers
/// like `Retry-After`.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, String)],
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(if keep_alive {
        "connection: keep-alive\r\n\r\n"
    } else {
        "connection: close\r\n\r\n"
    });
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A parsed response, as the load generator and tests consume them.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Response headers, lower-cased names.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// First header with this (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one response off a client connection (keep-alive aware: reads
/// exactly `content-length` bytes).
///
/// # Errors
///
/// Fails on socket errors or responses this module didn't write.
pub fn read_response(reader: &mut BufReader<&TcpStream>) -> io::Result<Response> {
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before status line",
            ));
        }
        let status: u16 = line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {line:?}"),
                )
            })?;
        // Interim 1xx responses (100 Continue) precede the real one.
        let interim = (100..200).contains(&status);
        let mut content_length = 0usize;
        let mut headers = Vec::new();
        loop {
            line.clear();
            reader.read_line(&mut line)?;
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                }
                headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
            }
        }
        if interim {
            continue;
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
        return Ok(Response {
            status,
            headers,
            body,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_writing_is_well_formed() {
        let mut buf = Vec::new();
        write_response(
            &mut buf,
            503,
            "application/json",
            b"{}",
            &[("retry-after", "1".to_owned())],
            false,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn reason_phrases_cover_emitted_statuses() {
        for status in [200, 400, 404, 405, 408, 413, 500, 503, 504] {
            assert!(!reason(status).is_empty(), "{status}");
        }
    }
}
