//! Lock-free service metrics and their Prometheus text rendering.
//!
//! The registry is a fixed struct of atomics rather than a generic
//! string-keyed map: every series the service can emit is known at
//! compile time, render order is deterministic, and the hot path is a
//! handful of relaxed atomic increments.

use crate::fault::FaultSite;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use tpi::{ProfileReport, RunnerStats};

/// The endpoints the router distinguishes (unknown paths fold into
/// [`Endpoint::Other`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/experiments`.
    Experiments,
    /// `GET /v1/kernels`.
    Kernels,
    /// `GET /v1/schemes`.
    Schemes,
    /// `GET /healthz`.
    Healthz,
    /// `GET /metrics`.
    Metrics,
    /// `POST /admin/shutdown`.
    Shutdown,
    /// Anything else (404/405 traffic).
    Other,
}

impl Endpoint {
    const ALL: [Endpoint; 7] = [
        Endpoint::Experiments,
        Endpoint::Kernels,
        Endpoint::Schemes,
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Shutdown,
        Endpoint::Other,
    ];

    fn index(self) -> usize {
        Endpoint::ALL
            .iter()
            .position(|&e| e == self)
            .expect("listed")
    }

    fn label(self) -> &'static str {
        match self {
            Endpoint::Experiments => "experiments",
            Endpoint::Kernels => "kernels",
            Endpoint::Schemes => "schemes",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Shutdown => "shutdown",
            Endpoint::Other => "other",
        }
    }
}

/// Status codes the service emits (everything else folds into `other`).
const STATUSES: [u16; 9] = [200, 400, 404, 405, 408, 413, 500, 503, 504];

fn status_index(status: u16) -> usize {
    STATUSES
        .iter()
        .position(|&s| s == status)
        .unwrap_or(STATUSES.len())
}

fn status_label(index: usize) -> String {
    STATUSES
        .get(index)
        .map_or_else(|| "other".to_owned(), ToString::to_string)
}

/// Upper bounds of the latency histogram buckets, in seconds.
pub const LATENCY_BUCKETS: [f64; 12] = [
    0.000_25, 0.000_5, 0.001, 0.002_5, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1.0, 5.0,
];

/// A fixed-bucket latency histogram (counts + sum, Prometheus style).
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; LATENCY_BUCKETS.len()],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        for (i, &bound) in LATENCY_BUCKETS.iter().enumerate() {
            if secs <= bound {
                self.buckets[i].fetch_add(1, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn render(&self, name: &str, labels: &str, out: &mut String) {
        use std::fmt::Write;
        for (i, &bound) in LATENCY_BUCKETS.iter().enumerate() {
            let _ = writeln!(
                out,
                "{name}_bucket{{{labels}le=\"{bound}\"}} {}",
                self.buckets[i].load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}le=\"+Inf\"}} {}",
            self.count.load(Ordering::Relaxed)
        );
        #[allow(clippy::cast_precision_loss)]
        let sum = self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9;
        let _ = writeln!(out, "{name}_sum{{{labels}}} {sum}");
        let _ = writeln!(
            out,
            "{name}_count{{{labels}}} {}",
            self.count.load(Ordering::Relaxed)
        );
    }
}

/// Every counter and gauge the service exports.
#[derive(Default)]
pub struct Metrics {
    requests: [[AtomicU64; STATUSES.len() + 1]; Endpoint::ALL.len()],
    latency: [Histogram; Endpoint::ALL.len()],
    /// Cells answered straight from the completed-result cache.
    pub cells_cached: AtomicU64,
    /// Cells that joined an identical in-flight computation
    /// (single-flight fan-in).
    pub cells_joined: AtomicU64,
    /// Cells actually computed by a worker.
    pub cells_computed: AtomicU64,
    /// Requests rejected because the work queue was full.
    pub rejected_queue_full: AtomicU64,
    /// Requests that hit their deadline before every cell finished.
    pub rejected_timeout: AtomicU64,
    /// Requests rejected for malformed or invalid bodies.
    pub bad_requests: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Cells whose computation panicked (contained per cell; the cell's
    /// waiters saw a structured `cell_panicked` error).
    pub cell_panics: AtomicU64,
    /// Worker threads that died and were respawned by the pool's
    /// supervision.
    pub worker_restarts: AtomicU64,
    /// Faults injected, per [`FaultSite`] (always zero when the fault
    /// layer is disabled).
    pub faults_injected: [AtomicU64; FaultSite::COUNT],
    /// Cells served from a verified disk-cache record (warm restarts).
    pub disk_hits: AtomicU64,
    /// Records durably written to the disk cache.
    pub disk_writes: AtomicU64,
    /// Disk-cache records quarantined (torn or corrupted — at startup or
    /// on a failed runtime read). Quarantined records are never served.
    pub disk_quarantined: AtomicU64,
    /// Completed results evicted from the bounded in-memory LRU (the
    /// disk store, when configured, still holds them).
    pub memory_evictions: AtomicU64,
}

impl Metrics {
    /// Counts one injected fault at `site`.
    pub fn fault(&self, site: FaultSite) {
        self.faults_injected[site.index()].fetch_add(1, Ordering::Relaxed);
    }
    /// Records one finished request.
    pub fn record_request(&self, endpoint: Endpoint, status: u16, elapsed: Duration) {
        self.requests[endpoint.index()][status_index(status)].fetch_add(1, Ordering::Relaxed);
        self.latency[endpoint.index()].observe(elapsed);
    }

    /// Total requests recorded for one endpoint (any status).
    #[must_use]
    pub fn requests_for(&self, endpoint: Endpoint) -> u64 {
        self.requests[endpoint.index()]
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Renders the whole registry in Prometheus text exposition format.
    /// `runner` contributes the artifact-cache counters, `profile` the
    /// tpi-prof stage timings; the queue/worker gauges are sampled by the
    /// caller (they live in the pool).
    #[must_use]
    pub fn render(
        &self,
        runner: &RunnerStats,
        profile: &ProfileReport,
        queue_depth: usize,
        workers_busy: usize,
        workers_total: usize,
        uptime: Duration,
    ) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(4096);

        out.push_str("# HELP tpi_serve_requests_total Requests served, by endpoint and status.\n");
        out.push_str("# TYPE tpi_serve_requests_total counter\n");
        for endpoint in Endpoint::ALL {
            for si in 0..=STATUSES.len() {
                let n = self.requests[endpoint.index()][si].load(Ordering::Relaxed);
                if n > 0 {
                    let _ = writeln!(
                        out,
                        "tpi_serve_requests_total{{endpoint=\"{}\",status=\"{}\"}} {n}",
                        endpoint.label(),
                        status_label(si)
                    );
                }
            }
        }

        out.push_str(
            "# HELP tpi_serve_request_duration_seconds Request latency, by endpoint.\n\
             # TYPE tpi_serve_request_duration_seconds histogram\n",
        );
        for endpoint in Endpoint::ALL {
            if self.latency[endpoint.index()].count() == 0 {
                continue;
            }
            self.latency[endpoint.index()].render(
                "tpi_serve_request_duration_seconds",
                &format!("endpoint=\"{}\",", endpoint.label()),
                &mut out,
            );
        }

        let simple: [(&str, &str, u64); 13] = [
            (
                "tpi_serve_cells_cached_total",
                "Grid cells answered from the completed-result cache.",
                self.cells_cached.load(Ordering::Relaxed),
            ),
            (
                "tpi_serve_cells_joined_total",
                "Grid cells that joined an identical in-flight computation (single-flight).",
                self.cells_joined.load(Ordering::Relaxed),
            ),
            (
                "tpi_serve_cells_computed_total",
                "Grid cells computed by a worker.",
                self.cells_computed.load(Ordering::Relaxed),
            ),
            (
                "tpi_serve_rejected_queue_full_total",
                "Requests rejected with 503 because the work queue was full.",
                self.rejected_queue_full.load(Ordering::Relaxed),
            ),
            (
                "tpi_serve_rejected_timeout_total",
                "Requests that exceeded their deadline (504).",
                self.rejected_timeout.load(Ordering::Relaxed),
            ),
            (
                "tpi_serve_bad_requests_total",
                "Requests rejected with 400.",
                self.bad_requests.load(Ordering::Relaxed),
            ),
            (
                "tpi_serve_connections_total",
                "TCP connections accepted.",
                self.connections.load(Ordering::Relaxed),
            ),
            (
                "tpi_cell_panics_total",
                "Cell computations that panicked (contained; waiters saw a structured 500).",
                self.cell_panics.load(Ordering::Relaxed),
            ),
            (
                "tpi_worker_restarts_total",
                "Worker threads respawned by the pool's supervision.",
                self.worker_restarts.load(Ordering::Relaxed),
            ),
            (
                "tpi_disk_cache_hits_total",
                "Cells served from a verified disk-cache record.",
                self.disk_hits.load(Ordering::Relaxed),
            ),
            (
                "tpi_disk_cache_writes_total",
                "Records durably written to the disk cache.",
                self.disk_writes.load(Ordering::Relaxed),
            ),
            (
                "tpi_disk_cache_quarantined_total",
                "Disk-cache records quarantined instead of served (torn or corrupted).",
                self.disk_quarantined.load(Ordering::Relaxed),
            ),
            (
                "tpi_serve_memory_evictions_total",
                "Completed results evicted from the bounded in-memory LRU.",
                self.memory_evictions.load(Ordering::Relaxed),
            ),
        ];
        for (name, help, value) in simple {
            let _ = writeln!(
                out,
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}"
            );
        }

        out.push_str(
            "# HELP tpi_faults_injected_total Faults injected by the tpi-fault layer, by site.\n\
             # TYPE tpi_faults_injected_total counter\n",
        );
        for site in FaultSite::ALL {
            let n = self.faults_injected[site.index()].load(Ordering::Relaxed);
            if n > 0 {
                let _ = writeln!(
                    out,
                    "tpi_faults_injected_total{{site=\"{}\"}} {n}",
                    site.key()
                );
            }
        }

        let gauges: [(&str, &str, u64); 3] = [
            (
                "tpi_serve_queue_depth",
                "Cells waiting in the bounded work queue.",
                queue_depth as u64,
            ),
            (
                "tpi_serve_workers_busy",
                "Workers currently simulating a cell.",
                workers_busy as u64,
            ),
            (
                "tpi_serve_workers_total",
                "Size of the worker pool.",
                workers_total as u64,
            ),
        ];
        for (name, help, value) in gauges {
            let _ = writeln!(
                out,
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}"
            );
        }
        let _ = writeln!(
            out,
            "# HELP tpi_serve_uptime_seconds Seconds since the server started.\n\
             # TYPE tpi_serve_uptime_seconds gauge\n\
             tpi_serve_uptime_seconds {}",
            uptime.as_secs()
        );

        let runner_counters: [(&str, &str, u64); 8] = [
            (
                "tpi_runner_programs_built_total",
                "Programs built by the Runner (artifact-cache misses).",
                runner.programs_built,
            ),
            (
                "tpi_runner_program_hits_total",
                "Program artifact-cache hits.",
                runner.program_hits,
            ),
            (
                "tpi_runner_markings_built_total",
                "Marking passes run (artifact-cache misses).",
                runner.markings_built,
            ),
            (
                "tpi_runner_marking_hits_total",
                "Marking artifact-cache hits.",
                runner.marking_hits,
            ),
            (
                "tpi_runner_traces_built_total",
                "Traces interpreted (artifact-cache misses).",
                runner.traces_built,
            ),
            (
                "tpi_runner_trace_hits_total",
                "Trace artifact-cache hits.",
                runner.trace_hits,
            ),
            (
                "tpi_runner_cells_simulated_total",
                "Cells simulated by the Runner.",
                runner.cells_simulated,
            ),
            (
                "tpi_runner_cells_deduped_total",
                "Cells answered by copying an identical sibling cell.",
                runner.cells_deduped,
            ),
        ];
        for (name, help, value) in runner_counters {
            let _ = writeln!(
                out,
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}"
            );
        }

        let cache = runner.cache();
        out.push_str(
            "# HELP tpi_runner_cache_hit_ratio Fraction of Runner memo-store lookups answered \
             from the store, by stage.\n\
             # TYPE tpi_runner_cache_hit_ratio gauge\n",
        );
        let stages = [
            ("programs", cache.programs.hit_rate()),
            ("markings", cache.markings.hit_rate()),
            ("traces", cache.traces.hit_rate()),
            ("cells", cache.cells.hit_rate()),
            ("total", cache.total().hit_rate()),
        ];
        for (stage, ratio) in stages {
            let _ = writeln!(
                out,
                "tpi_runner_cache_hit_ratio{{stage=\"{stage}\"}} {ratio}"
            );
        }

        if !profile.stages.is_empty() {
            out.push_str(
                "# HELP tpi_prof_stage_wall_seconds Wall time attributed to each tpi-prof \
                 pipeline stage since startup.\n\
                 # TYPE tpi_prof_stage_wall_seconds gauge\n",
            );
            for stage in &profile.stages {
                #[allow(clippy::cast_precision_loss)]
                let secs = stage.nanos as f64 / 1e9;
                let _ = writeln!(
                    out,
                    "tpi_prof_stage_wall_seconds{{stage=\"{}\"}} {secs}",
                    stage.path
                );
            }
            out.push_str(
                "# HELP tpi_prof_stage_calls_total Times each tpi-prof pipeline stage ran.\n\
                 # TYPE tpi_prof_stage_calls_total counter\n",
            );
            for stage in &profile.stages {
                let _ = writeln!(
                    out,
                    "tpi_prof_stage_calls_total{{stage=\"{}\"}} {}",
                    stage.path, stage.calls
                );
            }
        }
        if !profile.counters.is_empty() {
            out.push_str(
                "# HELP tpi_prof_events_total tpi-prof pipeline event counters \
                 (simulated events, protocol operations).\n\
                 # TYPE tpi_prof_events_total counter\n",
            );
            for (name, value) in &profile.counters {
                let _ = writeln!(out, "tpi_prof_events_total{{event=\"{name}\"}} {value}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders() {
        let m = Metrics::default();
        m.record_request(Endpoint::Experiments, 200, Duration::from_millis(3));
        m.record_request(Endpoint::Experiments, 400, Duration::from_micros(100));
        m.record_request(Endpoint::Healthz, 200, Duration::from_micros(10));
        m.cells_computed.fetch_add(4, Ordering::Relaxed);
        let text = m.render(
            &RunnerStats::default(),
            &ProfileReport::default(),
            2,
            1,
            8,
            Duration::from_secs(5),
        );
        assert!(
            text.contains("tpi_serve_requests_total{endpoint=\"experiments\",status=\"200\"} 1")
        );
        assert!(
            text.contains("tpi_serve_requests_total{endpoint=\"experiments\",status=\"400\"} 1")
        );
        assert!(text.contains("tpi_serve_cells_computed_total 4"));
        assert!(text.contains("tpi_serve_queue_depth 2"));
        assert!(text.contains("tpi_serve_workers_total 8"));
        assert!(
            text.contains("tpi_serve_request_duration_seconds_count{endpoint=\"experiments\",} 2")
        );
        // A bucket wide enough for the 3 ms observation.
        assert!(text.contains(
            "tpi_serve_request_duration_seconds_bucket{endpoint=\"experiments\",le=\"0.005\"} 2"
        ));
        assert_eq!(m.requests_for(Endpoint::Experiments), 2);
    }

    #[test]
    fn fault_and_hardening_counters_render() {
        let m = Metrics::default();
        m.fault(FaultSite::WorkerPanic);
        m.fault(FaultSite::WorkerPanic);
        m.fault(FaultSite::ConnDrop);
        m.cell_panics.fetch_add(2, Ordering::Relaxed);
        m.worker_restarts.fetch_add(1, Ordering::Relaxed);
        m.record_request(Endpoint::Experiments, 500, Duration::from_millis(1));
        let text = m.render(
            &RunnerStats::default(),
            &ProfileReport::default(),
            0,
            0,
            4,
            Duration::from_secs(1),
        );
        assert!(text.contains("tpi_faults_injected_total{site=\"worker_panic\"} 2"));
        assert!(text.contains("tpi_faults_injected_total{site=\"conn_drop\"} 1"));
        // Silent sites are omitted.
        assert!(!text.contains("site=\"overload\""));
        assert!(text.contains("tpi_cell_panics_total 2"));
        assert!(text.contains("tpi_worker_restarts_total 1"));
        assert!(
            text.contains("tpi_serve_requests_total{endpoint=\"experiments\",status=\"500\"} 1")
        );
    }

    #[test]
    fn profile_stages_render_as_prof_series() {
        let m = Metrics::default();
        let profile = ProfileReport {
            stages: vec![tpi::StageProfile {
                path: "simulate".to_owned(),
                calls: 3,
                nanos: 2_000_000_000,
            }],
            counters: vec![("sim_events".to_owned(), 42)],
        };
        let text = m.render(
            &RunnerStats::default(),
            &profile,
            0,
            0,
            1,
            Duration::from_secs(1),
        );
        assert!(text.contains("tpi_prof_stage_wall_seconds{stage=\"simulate\"} 2"));
        assert!(text.contains("tpi_prof_stage_calls_total{stage=\"simulate\"} 3"));
        assert!(text.contains("tpi_prof_events_total{event=\"sim_events\"} 42"));
        // An empty profile emits none of the prof series.
        let empty = m.render(
            &RunnerStats::default(),
            &ProfileReport::default(),
            0,
            0,
            1,
            Duration::from_secs(1),
        );
        assert!(!empty.contains("tpi_prof_"));
    }

    #[test]
    fn histogram_counts_are_cumulative() {
        let h = Histogram::default();
        h.observe(Duration::from_micros(100)); // <= 0.00025
        h.observe(Duration::from_millis(40)); // <= 0.05
        let mut out = String::new();
        h.render("x", "", &mut out);
        assert!(out.contains("x_bucket{le=\"0.00025\"} 1"));
        assert!(out.contains("x_bucket{le=\"0.05\"} 2"));
        assert!(out.contains("x_bucket{le=\"+Inf\"} 2"));
        assert!(out.contains("x_count{} 2"));
    }
}
