//! `tpi-serve` — the reproduction as a long-lived service.
//!
//! Every other entry point in this workspace is a one-shot CLI; this
//! crate turns the memoized [`tpi::Runner`] into a production-style
//! experiment service: a dependency-free, std-only multithreaded
//! HTTP/1.1 server whose unit of work is one grid cell of the paper's
//! evaluation (kernel × scheme × optimization level × processor count).
//!
//! | endpoint | purpose |
//! |----------|---------|
//! | `POST /v1/experiments` | run a JSON grid request, return per-cell results |
//! | `GET /v1/kernels` | discovery: the benchmark suite |
//! | `GET /v1/schemes` | discovery: the coherence schemes |
//! | `GET /healthz` | liveness + queue/cache gauges |
//! | `GET /metrics` | Prometheus text: request counts, latency histograms, queue depth, worker utilization, Runner artifact-cache counters |
//! | `POST /admin/shutdown` | graceful shutdown: stop accepting, drain, report |
//!
//! Robustness mechanics: bounded work queue with all-or-nothing
//! backpressure (503 + `Retry-After`), per-request deadlines (504),
//! single-flight deduplication of identical in-flight cells, a
//! completed-result cache, structured 400s for malformed bodies, and
//! graceful drain on shutdown. Failure isolation is tested, not
//! assumed: a panicking cell is contained to a structured 500 for its
//! waiters ([`pool`]), dead workers are respawned, the load generator
//! retries transient failures with jittered backoff ([`loadgen`]), and
//! a deterministic seeded fault plan ([`fault`]) plus a chaos soak
//! ([`chaos`], the `tpi-chaos` binary) exercise every failure path.
//!
//! Replication and persistence ride on top of the single-node server:
//! a crash-safe content-addressed disk cache ([`disk`], `--cache-dir`)
//! makes restarts warm and byte-identical (corrupt records are
//! quarantined, never served), and the `tpi-router` binary ([`router`])
//! fronts N replicas with consistent hashing, health leases, failover,
//! and fleet-wide single-flight — `tpi-chaos --router` SIGKILLs a real
//! replica mid-burst and asserts zero failed client requests plus a
//! warm restart from its disk cache. See `DESIGN.md` ("The experiment
//! service", "Replication and persistence") for the architecture.
//!
//! # Quickstart
//!
//! ```
//! use tpi_serve::server::{ServeConfig, Server};
//! use tpi_serve::loadgen;
//! use std::time::Duration;
//!
//! let server = Server::start(ServeConfig {
//!     addr: "127.0.0.1:0".to_owned(), // ephemeral port: no collisions
//!     ..ServeConfig::default()
//! })?;
//! let addr = server.addr();
//! let health = loadgen::get(addr, "/healthz", Duration::from_secs(5))?;
//! assert_eq!(health.status, 200);
//! let stats = server.shutdown();
//! assert_eq!(stats.cells_computed, 0);
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod disk;
pub mod fault;
pub mod http;
pub mod json;
pub mod loadgen;
pub mod metrics;
pub mod pool;
pub mod router;
pub mod server;
pub mod wire;

pub use disk::{DiskCache, RecoveryReport};
pub use fault::{FaultPlan, FaultSite};
pub use router::{Router, RouterConfig};
pub use server::{ServeConfig, ServeStats, Server};
pub use wire::{CellKey, GridRequest};
