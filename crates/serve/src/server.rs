//! The service: accept loop, router, request handling, and graceful
//! shutdown.
//!
//! ```text
//! clients ──► accept loop ──► connection threads ──► router
//!                                                      │
//!                       POST /v1/experiments ──► plan cells (CellStore)
//!                         cached ◄─ result cache       │ leads
//!                         joined ◄─ in-flight table    ▼
//!                                             bounded queue ──► workers ──► Runner
//! ```
//!
//! Robustness mechanics, all on by default: the work queue is bounded
//! (overflow → 503 + `Retry-After`), every request carries a deadline
//! (exceeded → 504), malformed bodies are 400s with structured error
//! bodies, identical in-flight cells are computed once (single-flight),
//! panicking cells resolve to structured 500s without wedging their
//! waiters, dead workers respawn, and shutdown stops accepting, drains
//! or terminally fails every queued cell, then reports a final stats
//! line. An optional [`FaultPlan`] (the `--faults` flag) injects
//! deterministic failures at every one of those seams; it is absent —
//! and free — in normal operation. See `DESIGN.md` ("Failure model").

use crate::disk::{DiskCache, RecoveryReport};
use crate::fault::{FaultPlan, FaultSite};
use crate::http::{read_request, write_response, HttpError, Request};
use crate::json::{parse, Json};
use crate::metrics::{Endpoint, Metrics};
use crate::pool::{CellError, CellOutcome, CellPlan, CellStore, WorkerPool, DEFAULT_MEMORY_CELLS};
use crate::wire::{
    error_body, kernels_body, render_cell_error, schemes_body, BadRequest, CellKey, GridRequest,
};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use tpi::{lock_unpoisoned, wait_unpoisoned, Runner};

/// Everything tunable about one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address. Port 0 asks the OS for an ephemeral port; the bound
    /// address is reported by [`Server::addr`] and printed by the binary,
    /// so tests never hard-code ports.
    pub addr: String,
    /// Worker threads simulating cells.
    pub workers: usize,
    /// Bounded work-queue capacity, in cells.
    pub queue_cap: usize,
    /// Per-request deadline: a request whose cells haven't all finished
    /// by then gets a 504.
    pub request_timeout: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Largest grid a single request may expand to.
    pub max_cells_per_request: usize,
    /// Test hook: artificial latency added to every cell computation.
    pub cell_delay: Duration,
    /// Deterministic fault injection (the `--faults` flag). `None` — the
    /// default — means no faults and no injection overhead.
    pub fault: Option<Arc<FaultPlan>>,
    /// Directory for the crash-safe persistent result cache (the
    /// `--cache-dir` flag). `None` — the default — keeps the store
    /// memory-only, exactly the pre-persistence behavior.
    pub cache_dir: Option<PathBuf>,
    /// Bound on the in-memory completed-result LRU, in cells (the
    /// `--memory-cells` flag).
    pub memory_cells: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get),
            queue_cap: 256,
            request_timeout: Duration::from_secs(60),
            max_body_bytes: 1024 * 1024,
            max_cells_per_request: 1024,
            cell_delay: Duration::ZERO,
            fault: None,
            cache_dir: None,
            memory_cells: DEFAULT_MEMORY_CELLS,
        }
    }
}

/// The final stats line a graceful shutdown reports.
#[derive(Debug, Clone, Copy)]
pub struct ServeStats {
    /// Requests served on the experiments endpoint.
    pub experiment_requests: u64,
    /// Cells computed by workers.
    pub cells_computed: u64,
    /// Cells answered from the result cache.
    pub cells_cached: u64,
    /// Cells that joined an in-flight computation.
    pub cells_joined: u64,
    /// Requests refused with 503.
    pub rejected_queue_full: u64,
    /// Requests that timed out with 504.
    pub rejected_timeout: u64,
    /// Cell computations that panicked (contained per cell).
    pub cell_panics: u64,
    /// Worker threads the supervisor respawned.
    pub worker_restarts: u64,
    /// Runner artifact-cache snapshot.
    pub runner: tpi::RunnerStats,
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[tpi-serve final: {} experiment requests; cells {} computed / {} cached / {} joined; \
             {} overloaded / {} timed out; {} cell panics / {} worker restarts; \
             runner traces {} built / {} reused]",
            self.experiment_requests,
            self.cells_computed,
            self.cells_cached,
            self.cells_joined,
            self.rejected_queue_full,
            self.rejected_timeout,
            self.cell_panics,
            self.worker_restarts,
            self.runner.traces_built,
            self.runner.trace_hits,
        )
    }
}

struct Shared {
    config: ServeConfig,
    addr: SocketAddr,
    runner: Arc<Runner>,
    metrics: Arc<Metrics>,
    store: Arc<CellStore>,
    pool: WorkerPool,
    fault: Option<Arc<FaultPlan>>,
    shutdown: AtomicBool,
    shutdown_signal: (Mutex<bool>, Condvar),
    active_conns: AtomicUsize,
    started: Instant,
    /// What the disk-cache recovery scan found at startup (`None` when
    /// the server runs memory-only).
    recovery: Option<RecoveryReport>,
}

impl Shared {
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        let (lock, cond) = &self.shutdown_signal;
        *lock_unpoisoned(lock) = true;
        cond.notify_all();
        // Poke the blocking accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

/// A running service instance.
pub struct Server {
    shared: Arc<Shared>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool and the accept loop, and returns.
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let runner = Arc::new(Runner::new());
        let metrics = Arc::new(Metrics::default());
        let fault = config.fault.clone();
        let (disk, recovery) = match &config.cache_dir {
            Some(dir) => {
                let (disk, report) = DiskCache::open(dir, fault.clone(), Arc::clone(&metrics))?;
                (Some(Arc::new(disk)), Some(report))
            }
            None => (None, None),
        };
        let store = Arc::new(CellStore::new(
            config.memory_cells,
            disk,
            Some(Arc::clone(&metrics)),
        ));
        let pool = WorkerPool::start(
            config.workers,
            config.queue_cap,
            Arc::clone(&runner),
            Arc::clone(&store),
            Arc::clone(&metrics),
            fault.clone(),
            config.cell_delay,
        );
        let shared = Arc::new(Shared {
            config,
            addr,
            runner,
            metrics,
            store,
            pool,
            fault,
            shutdown: AtomicBool::new(false),
            shutdown_signal: (Mutex::new(false), Condvar::new()),
            active_conns: AtomicUsize::new(0),
            started: Instant::now(),
            recovery,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("tpi-serve-accept".to_owned())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawn accept loop");
        Ok(Server {
            shared,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// What the disk-cache recovery scan found at startup (`None` when
    /// no `cache_dir` is configured).
    #[must_use]
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.shared.recovery
    }

    /// Cells currently in flight. Zero once every request has been
    /// terminally answered — `tpi-chaos` asserts exactly that at drain.
    #[must_use]
    pub fn inflight_cells(&self) -> usize {
        self.shared.store.inflight_cells()
    }

    /// A snapshot of the completed-result cache, for out-of-band
    /// verification against a fresh serial [`Runner`].
    #[must_use]
    pub fn cell_snapshot(&self) -> Vec<(CellKey, Arc<CellOutcome>)> {
        self.shared.store.snapshot()
    }

    /// A handle on the cell store that outlives [`Server::shutdown`] —
    /// `tpi-chaos` inspects the drained store after the server is gone.
    #[must_use]
    pub fn cell_store(&self) -> Arc<CellStore> {
        Arc::clone(&self.shared.store)
    }

    /// Blocks until some client posts `/admin/shutdown` (or another
    /// thread calls [`Server::shutdown`]).
    pub fn wait_for_shutdown_request(&self) {
        let (lock, cond) = &self.shared.shutdown_signal;
        let mut requested = lock_unpoisoned(lock);
        while !*requested {
            requested = wait_unpoisoned(cond, requested);
        }
    }

    /// Graceful shutdown: stop accepting, drain or terminally fail every
    /// queued cell, then wait for open connections to write their final
    /// responses (bounded) and report the final counters.
    ///
    /// The pool is stopped *before* waiting on connections: connections
    /// may be blocked on flight slots whose jobs are still queued, and
    /// under faults there may be no worker left to drain them — stopping
    /// the pool first resolves every slot (computed by a surviving
    /// worker, or failed with [`CellError::ShuttingDown`]), so waiting
    /// connections always get a terminal answer instead of wedging the
    /// drain window.
    pub fn shutdown(mut self) -> ServeStats {
        self.shared.request_shutdown();
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        self.shared.pool.shutdown();
        // Connections notice the flag within one idle-poll interval.
        let drain_deadline = Instant::now() + Duration::from_secs(10);
        while self.shared.active_conns.load(Ordering::Acquire) > 0
            && Instant::now() < drain_deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        let m = &self.shared.metrics;
        ServeStats {
            experiment_requests: m.requests_for(Endpoint::Experiments),
            cells_computed: m.cells_computed.load(Ordering::Relaxed),
            cells_cached: m.cells_cached.load(Ordering::Relaxed),
            cells_joined: m.cells_joined.load(Ordering::Relaxed),
            rejected_queue_full: m.rejected_queue_full.load(Ordering::Relaxed),
            rejected_timeout: m.rejected_timeout.load(Ordering::Relaxed),
            cell_panics: m.cell_panics.load(Ordering::Relaxed),
            worker_restarts: m.worker_restarts.load(Ordering::Relaxed),
            runner: self.shared.runner.stats(),
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutting_down() {
                    return;
                }
                if let Some(plan) = &shared.fault {
                    if plan.fires(FaultSite::ConnDrop) {
                        shared.metrics.fault(FaultSite::ConnDrop);
                        // Dropping the stream resets the connection
                        // before a single byte is served.
                        continue;
                    }
                }
                shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                shared.active_conns.fetch_add(1, Ordering::AcqRel);
                let conn_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("tpi-serve-conn".to_owned())
                    .spawn(move || {
                        connection_loop(&stream, &conn_shared);
                        conn_shared.active_conns.fetch_sub(1, Ordering::AcqRel);
                    });
                if spawned.is_err() {
                    shared.active_conns.fetch_sub(1, Ordering::AcqRel);
                }
            }
            Err(_) => {
                if shared.shutting_down() {
                    return;
                }
            }
        }
    }
}

/// How long a connection blocks in `read` before re-checking the
/// shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(100);

fn connection_loop(stream: &TcpStream, shared: &Arc<Shared>) {
    if stream.set_read_timeout(Some(IDLE_POLL)).is_err() {
        return;
    }
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader, shared.config.max_body_bytes) {
            Ok(request) => request,
            Err(HttpError::Idle) => {
                if shared.shutting_down() {
                    return;
                }
                continue;
            }
            Err(HttpError::Closed | HttpError::Io(_)) => return,
            Err(HttpError::Malformed(message)) => {
                let body = error_body("bad_request", &message);
                let mut out = stream;
                let _ = write_response(
                    &mut out,
                    400,
                    "application/json",
                    body.as_bytes(),
                    &[],
                    false,
                );
                return;
            }
            Err(HttpError::BodyTooLarge(n)) => {
                let body = error_body("body_too_large", &format!("{n} bytes exceeds the limit"));
                let mut out = stream;
                let _ = write_response(
                    &mut out,
                    413,
                    "application/json",
                    body.as_bytes(),
                    &[],
                    false,
                );
                return;
            }
        };
        let started = Instant::now();
        let (endpoint, response) = route(shared, &request);
        shared
            .metrics
            .record_request(endpoint, response.status, started.elapsed());
        let keep_alive = request.keep_alive && !shared.shutting_down();
        let headers: Vec<(&str, String)> = response
            .extra_headers
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        if let Some(plan) = &shared.fault {
            if plan.fires(FaultSite::RespTruncate) {
                shared.metrics.fault(FaultSite::RespTruncate);
                // Render the full response, send only half of it, and
                // hang up: the client sees garbage-terminated bytes.
                let mut rendered = Vec::new();
                let _ = write_response(
                    &mut rendered,
                    response.status,
                    response.content_type,
                    response.body.as_bytes(),
                    &headers,
                    false,
                );
                let mut out = stream;
                let _ = out.write_all(&rendered[..rendered.len() / 2]);
                return;
            }
        }
        let mut out = stream;
        if write_response(
            &mut out,
            response.status,
            response.content_type,
            response.body.as_bytes(),
            &headers,
            keep_alive,
        )
        .is_err()
            || !keep_alive
        {
            return;
        }
    }
}

struct RouteResponse {
    status: u16,
    content_type: &'static str,
    body: String,
    extra_headers: Vec<(&'static str, String)>,
}

impl RouteResponse {
    fn json(status: u16, body: String) -> RouteResponse {
        RouteResponse {
            status,
            content_type: "application/json",
            body,
            extra_headers: Vec::new(),
        }
    }
}

fn route(shared: &Arc<Shared>, request: &Request) -> (Endpoint, RouteResponse) {
    let path = request
        .target
        .split('?')
        .next()
        .unwrap_or(request.target.as_str());
    match (request.method.as_str(), path) {
        ("POST", "/v1/experiments") => {
            if shared.shutting_down() {
                return (Endpoint::Experiments, shutting_down_response());
            }
            (
                Endpoint::Experiments,
                handle_experiments(shared, &request.body),
            )
        }
        ("GET", "/v1/kernels") => (Endpoint::Kernels, RouteResponse::json(200, kernels_body())),
        ("GET", "/v1/schemes") => (Endpoint::Schemes, RouteResponse::json(200, schemes_body())),
        ("GET", "/healthz") => (Endpoint::Healthz, handle_healthz(shared)),
        ("GET", "/metrics") => (
            Endpoint::Metrics,
            RouteResponse {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                body: shared.metrics.render(
                    &shared.runner.stats(),
                    &shared.runner.profile(),
                    shared.pool.queue_depth(),
                    shared.pool.busy(),
                    shared.pool.workers(),
                    shared.started.elapsed(),
                ),
                extra_headers: Vec::new(),
            },
        ),
        ("POST", "/admin/shutdown") => {
            shared.request_shutdown();
            (
                Endpoint::Shutdown,
                RouteResponse::json(200, "{\"status\":\"shutting down\"}".to_owned()),
            )
        }
        (
            _,
            "/v1/experiments" | "/v1/kernels" | "/v1/schemes" | "/healthz" | "/metrics"
            | "/admin/shutdown",
        ) => (
            Endpoint::Other,
            RouteResponse::json(405, error_body("method_not_allowed", "wrong method")),
        ),
        _ => (
            Endpoint::Other,
            RouteResponse::json(
                404,
                error_body("not_found", &format!("no route for {path}")),
            ),
        ),
    }
}

fn handle_healthz(shared: &Arc<Shared>) -> RouteResponse {
    let mut members = vec![
        ("status", Json::from("ok")),
        (
            "uptime_seconds",
            Json::from(shared.started.elapsed().as_secs()),
        ),
        ("workers", Json::from(shared.pool.workers())),
        ("queue_depth", Json::from(shared.pool.queue_depth())),
        ("queue_capacity", Json::from(shared.pool.capacity())),
        ("results_cached", Json::from(shared.store.results_cached())),
    ];
    if let Some(disk) = shared.store.disk() {
        let stats = disk.stats();
        members.push((
            "disk",
            Json::obj([
                ("entries", Json::from(disk.entries())),
                ("hits", Json::from(stats.hits)),
                ("writes", Json::from(stats.writes)),
                ("quarantined", Json::from(stats.quarantined)),
            ]),
        ));
    }
    RouteResponse::json(200, Json::obj(members).render())
}

fn bad_request(shared: &Shared, err: &BadRequest) -> RouteResponse {
    shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
    RouteResponse::json(400, err.body())
}

fn overloaded(shared: &Shared) -> RouteResponse {
    shared
        .metrics
        .rejected_queue_full
        .fetch_add(1, Ordering::Relaxed);
    let mut response = RouteResponse::json(
        503,
        error_body(
            "overloaded",
            "work queue is full; retry after the suggested delay",
        ),
    );
    response.extra_headers.push(("retry-after", "1".to_owned()));
    response
}

fn shutting_down_response() -> RouteResponse {
    RouteResponse::json(
        503,
        error_body("shutting_down", "the service is shutting down"),
    )
}

fn handle_experiments(shared: &Arc<Shared>, body: &[u8]) -> RouteResponse {
    if let Some(plan) = &shared.fault {
        if plan.fires(FaultSite::Overload) {
            shared.metrics.fault(FaultSite::Overload);
            // Indistinguishable from real backpressure on the wire:
            // clients must treat it as the retryable 503 it claims to be.
            return overloaded(shared);
        }
    }
    let Ok(text) = std::str::from_utf8(body) else {
        return bad_request(
            shared,
            &BadRequest {
                code: "bad_json",
                message: "body is not UTF-8".to_owned(),
            },
        );
    };
    let doc = match parse(text) {
        Ok(doc) => doc,
        Err(e) => {
            return bad_request(
                shared,
                &BadRequest {
                    code: "bad_json",
                    message: e.to_string(),
                },
            )
        }
    };
    let grid = match GridRequest::parse(&doc) {
        Ok(grid) => grid,
        Err(e) => return bad_request(shared, &e),
    };
    let cells = grid.cells();
    if cells.len() > shared.config.max_cells_per_request {
        return bad_request(
            shared,
            &BadRequest {
                code: "too_many_cells",
                message: format!(
                    "{} cells exceeds the per-request limit of {}",
                    cells.len(),
                    shared.config.max_cells_per_request
                ),
            },
        );
    }

    // Plan every cell, collecting the jobs this request leads.
    let mut plans = Vec::with_capacity(cells.len());
    let mut jobs = Vec::new();
    for key in &cells {
        match shared.store.plan(*key) {
            CellPlan::Cached(outcome) => {
                shared.metrics.cells_cached.fetch_add(1, Ordering::Relaxed);
                plans.push((*key, Wait::Ready(outcome)));
            }
            CellPlan::Joined(slot) => {
                shared.metrics.cells_joined.fetch_add(1, Ordering::Relaxed);
                plans.push((*key, Wait::Slot(slot)));
            }
            CellPlan::Lead(job) => {
                plans.push((*key, Wait::Slot(Arc::clone(&job.slot))));
                jobs.push(job);
            }
        }
    }

    // Submit the led jobs as one unit: backpressure is all-or-nothing.
    // A refusal must release any waiter that joined the refused slots —
    // with the cause, so clients can tell a retryable queue-full from a
    // terminal shutdown refusal.
    if let Err(refused) = shared.pool.submit_batch(jobs) {
        let cause = if shared.shutting_down() {
            CellError::ShuttingDown
        } else {
            CellError::Overloaded
        };
        for job in &refused {
            shared.store.finish(job, Err(cause.clone()));
        }
        return if cause == CellError::ShuttingDown {
            shutting_down_response()
        } else {
            overloaded(shared)
        };
    }

    // Collect, in deterministic cell order, under the request deadline.
    let deadline = Instant::now() + shared.config.request_timeout;
    let mut rendered = Vec::with_capacity(plans.len());
    for (key, wait) in plans {
        let outcome: Arc<CellOutcome> = match wait {
            Wait::Ready(outcome) => outcome,
            Wait::Slot(slot) => match slot.wait_until(deadline) {
                Some(outcome) => outcome,
                None => {
                    shared
                        .metrics
                        .rejected_timeout
                        .fetch_add(1, Ordering::Relaxed);
                    return RouteResponse::json(
                        504,
                        error_body(
                            "timeout",
                            "request deadline exceeded before all cells finished",
                        ),
                    );
                }
            },
        };
        match outcome.as_ref() {
            Ok(value) => rendered.push(value.to_json(&key)),
            Err(CellError::Overloaded) => return overloaded(shared),
            Err(CellError::Failed(message)) => rendered.push(render_cell_error(&key, message)),
            Err(CellError::Panicked(message)) => {
                return RouteResponse::json(
                    500,
                    error_body(
                        "cell_panicked",
                        &format!("cell computation panicked: {message}"),
                    ),
                );
            }
            Err(CellError::ShuttingDown) => return shutting_down_response(),
        }
    }
    let count = rendered.len();
    let body = Json::obj([("cells", Json::Arr(rendered)), ("count", Json::from(count))]).render();
    RouteResponse::json(200, body)
}

enum Wait {
    Ready(Arc<CellOutcome>),
    Slot(Arc<crate::pool::FlightSlot>),
}
