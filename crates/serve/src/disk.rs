//! `tpi-disk` — the crash-safe persistent result cache under the
//! in-memory [`CellStore`](crate::pool::CellStore).
//!
//! The store is content-addressed: a cell's record lives at
//! `<hash(canonical key)>.cell` inside the cache directory, where the
//! hash is 128 bits of chained SplitMix64 over the key's
//! [`canonical`](crate::wire::CellKey::canonical) string. The payload is
//! the *rendered cell JSON* — the exact bytes the service would put in a
//! response — so a warm restart serves byte-identical results without
//! re-encoding anything.
//!
//! # Record format (version 1)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "TPIC"
//! 4       2     version (little-endian, currently 1)
//! 6       2     reserved (zero)
//! 8       4     key length K (little-endian)
//! 12      4     payload length P (little-endian)
//! 16      K     canonical key string (UTF-8)
//! 16+K    P     payload (rendered cell JSON, UTF-8)
//! 16+K+P  8     FNV-1a 64 checksum of bytes [0, 16+K+P)
//! ```
//!
//! The stored key string disambiguates hash collisions: a record whose
//! key does not match the requested key is a miss, never a hit.
//!
//! # Crash safety
//!
//! Writes go through temp file → `fsync` → atomic rename (plus a
//! best-effort directory fsync), so a crash leaves either the old record
//! or the new one, never a half-written visible record. The discipline
//! for everything else is *never serve a value you cannot re-verify*: a
//! record that fails the magic/version/length/checksum/key check — torn
//! by a crash, flipped by the `disk_torn_write` fault, or edited on disk
//! — is renamed to `*.quarantined` (startup recovery scan and runtime
//! reads alike) and the cell is recomputed.

use crate::fault::{splitmix64, FaultPlan, FaultSite};
use crate::json::{parse, Json};
use crate::metrics::Metrics;
use crate::wire::CellKey;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Record magic: "TPIC" (TPI cell).
const MAGIC: [u8; 4] = *b"TPIC";
/// Current record format version.
const VERSION: u16 = 1;
/// Fixed header size (magic + version + reserved + two lengths).
const HEADER: usize = 16;
/// Visible record extension.
const EXT: &str = "cell";
/// Extension quarantined records are renamed to.
const QUARANTINE_EXT: &str = "quarantined";
/// Extension for in-progress writes (invisible to reads and the scan).
const TMP_EXT: &str = "tmp";

/// FNV-1a 64-bit, the record checksum. Not cryptographic — it guards
/// against torn writes and bit rot, not adversaries with filesystem
/// access.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// 128 bits of file name for a canonical key string.
fn file_stem(canonical: &str) -> String {
    let a = fnv1a(canonical.as_bytes());
    let b = splitmix64(a);
    let c = splitmix64(b);
    format!("{b:016x}{c:016x}")
}

/// Why a record failed validation (quarantine reasons).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecordError {
    /// Too short, bad magic, bad version, or lengths inconsistent with
    /// the file size — what a torn write looks like.
    Malformed,
    /// Framing is intact but the checksum does not match — bit rot or a
    /// deliberate flip.
    Checksum,
}

/// Encodes one record.
fn encode(canonical: &str, payload: &str) -> Vec<u8> {
    let key = canonical.as_bytes();
    let body = payload.as_bytes();
    let mut out = Vec::with_capacity(HEADER + key.len() + body.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&u32::try_from(key.len()).unwrap_or(u32::MAX).to_le_bytes());
    out.extend_from_slice(&u32::try_from(body.len()).unwrap_or(u32::MAX).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(body);
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Decodes and verifies one record, returning `(canonical key, payload)`.
fn decode(bytes: &[u8]) -> Result<(&str, &str), RecordError> {
    if bytes.len() < HEADER + 8 || bytes[..4] != MAGIC {
        return Err(RecordError::Malformed);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Err(RecordError::Malformed);
    }
    let key_len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
    let payload_len = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize;
    let total = HEADER
        .checked_add(key_len)
        .and_then(|n| n.checked_add(payload_len))
        .and_then(|n| n.checked_add(8))
        .ok_or(RecordError::Malformed)?;
    if bytes.len() != total {
        return Err(RecordError::Malformed);
    }
    let sum_off = total - 8;
    let stored = u64::from_le_bytes(bytes[sum_off..].try_into().expect("8 checksum bytes"));
    if fnv1a(&bytes[..sum_off]) != stored {
        return Err(RecordError::Checksum);
    }
    let key =
        std::str::from_utf8(&bytes[HEADER..HEADER + key_len]).map_err(|_| RecordError::Checksum)?;
    let payload = std::str::from_utf8(&bytes[HEADER + key_len..sum_off])
        .map_err(|_| RecordError::Checksum)?;
    Ok((key, payload))
}

/// What the startup recovery scan found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Visible `*.cell` records examined.
    pub scanned: usize,
    /// Records that verified clean.
    pub valid: usize,
    /// Torn or corrupted records renamed to `*.quarantined`.
    pub quarantined: usize,
    /// Leftover `*.tmp` files (crash mid-write, never visible) removed.
    pub tmp_removed: usize,
}

/// Counter snapshot for `/metrics` and `/healthz`.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiskStats {
    /// Verified reads served from disk.
    pub hits: u64,
    /// Lookups that found no (valid, matching) record.
    pub misses: u64,
    /// Records durably written.
    pub writes: u64,
    /// Writes that failed at the filesystem (cache stays best-effort).
    pub write_errors: u64,
    /// Records quarantined — at startup or on a failed runtime read.
    pub quarantined: u64,
}

/// The persistent cell cache. See the [module docs](self) for the record
/// format and crash-safety contract.
pub struct DiskCache {
    dir: PathBuf,
    fault: Option<Arc<FaultPlan>>,
    metrics: Arc<Metrics>,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    write_errors: AtomicU64,
    quarantined: AtomicU64,
}

impl std::fmt::Debug for DiskCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskCache").field("dir", &self.dir).finish()
    }
}

impl DiskCache {
    /// Opens (creating if needed) the cache directory and runs the
    /// recovery scan: every visible record is verified, torn or
    /// corrupted ones are quarantined, and stale temp files are removed.
    ///
    /// # Errors
    ///
    /// Only directory-level failures (cannot create or read `dir`) are
    /// errors; a bad individual record is quarantined, not fatal.
    pub fn open(
        dir: &Path,
        fault: Option<Arc<FaultPlan>>,
        metrics: Arc<Metrics>,
    ) -> io::Result<(DiskCache, RecoveryReport)> {
        fs::create_dir_all(dir)?;
        let cache = DiskCache {
            dir: dir.to_path_buf(),
            fault,
            metrics,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        };
        let mut report = RecoveryReport::default();
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            let ext = path.extension().and_then(|e| e.to_str());
            if ext == Some(TMP_EXT) {
                let _ = fs::remove_file(&path);
                report.tmp_removed += 1;
                continue;
            }
            if ext != Some(EXT) {
                continue;
            }
            report.scanned += 1;
            match fs::read(&path).map(|bytes| decode(&bytes).map(|_| ())) {
                Ok(Ok(())) => report.valid += 1,
                Ok(Err(_)) | Err(_) => {
                    cache.quarantine(&path);
                    report.quarantined += 1;
                }
            }
        }
        Ok((cache, report))
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }

    /// Number of visible (non-quarantined) records on disk right now.
    #[must_use]
    pub fn entries(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|it| {
                it.filter_map(Result::ok)
                    .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some(EXT))
                    .count()
            })
            .unwrap_or(0)
    }

    fn record_path(&self, canonical: &str) -> PathBuf {
        self.dir.join(format!("{}.{EXT}", file_stem(canonical)))
    }

    /// Renames a bad record out of the visible namespace so it can never
    /// be served again, and counts it.
    fn quarantine(&self, path: &Path) {
        let mut target = path.as_os_str().to_owned();
        target.push(".");
        target.push(QUARANTINE_EXT);
        if fs::rename(path, &target).is_err() {
            // Rename failing (e.g. read-only fs) must still not leave the
            // record servable.
            let _ = fs::remove_file(path);
        }
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .disk_quarantined
            .fetch_add(1, Ordering::Relaxed);
    }

    fn slow(&self) {
        if let Some(delay) = self.fault.as_ref().and_then(|p| p.disk_latency()) {
            self.metrics.fault(FaultSite::DiskSlow);
            std::thread::sleep(delay);
        }
    }

    /// Looks `key` up, verifying the record end to end. Returns the
    /// parsed payload JSON on a clean hit; a torn/corrupted record is
    /// quarantined and reported as a miss so the caller recomputes.
    #[must_use]
    pub fn get(&self, key: &CellKey) -> Option<Json> {
        self.slow();
        let canonical = key.canonical();
        let path = self.record_path(&canonical);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode(&bytes) {
            Ok((stored_key, payload)) if stored_key == canonical => match parse(payload) {
                Ok(json) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.metrics.disk_hits.fetch_add(1, Ordering::Relaxed);
                    Some(json)
                }
                // Checksum-valid but unparsable payload: a record this
                // version never wrote. Quarantine rather than serve.
                Err(_) => {
                    self.quarantine(&path);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    None
                }
            },
            // Hash collision with a different key: a miss, and the other
            // key's record stays.
            Ok(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(_) => {
                self.quarantine(&path);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Durably stores `payload` (the rendered cell JSON) for `key`:
    /// temp file → `fsync` → atomic rename → best-effort directory
    /// `fsync`. Filesystem failures make the write a no-op (counted in
    /// [`DiskStats::write_errors`]); the cache is best-effort, the
    /// in-memory store still has the result.
    pub fn put(&self, key: &CellKey, payload: &str) {
        self.slow();
        let canonical = key.canonical();
        let record = encode(&canonical, payload);
        let path = self.record_path(&canonical);
        if let Some(plan) = &self.fault {
            if plan.fires(FaultSite::DiskTornWrite) {
                self.metrics.fault(FaultSite::DiskTornWrite);
                // Crash between write and rename: a truncated record at
                // the final path, no checksum. Recovery must quarantine
                // it, never serve it.
                let torn = &record[..record.len() * 2 / 3];
                let _ = fs::write(&path, torn);
                return;
            }
        }
        let tmp = self
            .dir
            .join(format!("{}.{TMP_EXT}", file_stem(&canonical)));
        let result = (|| -> io::Result<()> {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&record)?;
            file.sync_all()?;
            drop(file);
            fs::rename(&tmp, &path)?;
            // Make the rename itself durable where the platform allows
            // opening a directory; failure here only weakens durability,
            // not atomicity.
            if let Ok(d) = fs::File::open(&self.dir) {
                let _ = d.sync_all();
            }
            Ok(())
        })();
        match result {
            Ok(()) => {
                self.writes.fetch_add(1, Ordering::Relaxed);
                self.metrics.disk_writes.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                let _ = fs::remove_file(&tmp);
                self.write_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("tpi-disk-test-{}-{tag}-{n}", std::process::id()))
    }

    fn key(seed: u64) -> CellKey {
        CellKey {
            kernel: tpi_workloads::Kernel::Flo52,
            scale: tpi_workloads::Scale::Test,
            scheme: tpi_proto::SchemeId::TPI,
            opt_level: tpi_compiler::OptLevel::Full,
            procs: 16,
            line_words: 4,
            cache_bytes: 64 * 1024,
            tag_bits: 8,
            seed,
        }
    }

    fn open(dir: &Path) -> (DiskCache, RecoveryReport) {
        DiskCache::open(dir, None, Arc::new(Metrics::default())).unwrap()
    }

    #[test]
    fn roundtrips_and_is_warm_across_reopen() {
        let dir = scratch_dir("roundtrip");
        let (cache, report) = open(&dir);
        assert_eq!(report, RecoveryReport::default());
        assert!(cache.get(&key(1)).is_none());
        cache.put(&key(1), r#"{"total_cycles":123}"#);
        let hit = cache.get(&key(1)).expect("written record is served");
        assert_eq!(hit.render(), r#"{"total_cycles":123}"#);
        // Reopen: the scan verifies the record and the cache stays warm.
        let (cache, report) = open(&dir);
        assert_eq!(
            (report.scanned, report.valid, report.quarantined),
            (1, 1, 0)
        );
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_none(), "other keys still miss");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_flipped_byte_is_quarantined_not_served() {
        let dir = scratch_dir("flip");
        let (cache, _) = open(&dir);
        cache.put(&key(3), r#"{"total_cycles":7}"#);
        let record = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .find(|e| e.path().extension().and_then(|x| x.to_str()) == Some(EXT))
            .unwrap()
            .path();
        let mut bytes = fs::read(&record).unwrap();
        let mid = HEADER + 10;
        bytes[mid] ^= 0x40;
        fs::write(&record, &bytes).unwrap();
        // Runtime read: detected, quarantined, miss.
        assert!(cache.get(&key(3)).is_none());
        assert_eq!(cache.stats().quarantined, 1);
        assert_eq!(cache.entries(), 0);
        assert!(!record.exists(), "bad record left the visible namespace");
        // Startup scan path: write another bad record and reopen.
        cache.put(&key(4), r#"{"total_cycles":8}"#);
        let record = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .find(|e| e.path().extension().and_then(|x| x.to_str()) == Some(EXT))
            .unwrap()
            .path();
        let bytes = fs::read(&record).unwrap();
        fs::write(&record, &bytes[..bytes.len() - 3]).unwrap();
        let (cache, report) = open(&dir);
        assert_eq!(report.quarantined, 1);
        assert!(cache.get(&key(4)).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_fault_leaves_an_unservable_record() {
        let dir = scratch_dir("torn");
        let plan = Arc::new(FaultPlan::parse("disk_torn_write=1@1").unwrap());
        let metrics = Arc::new(Metrics::default());
        let (cache, _) =
            DiskCache::open(&dir, Some(Arc::clone(&plan)), Arc::clone(&metrics)).unwrap();
        cache.put(&key(5), r#"{"total_cycles":9}"#);
        assert_eq!(cache.stats().writes, 0, "the torn write is not durable");
        // The torn record is present but must never be served.
        assert_eq!(cache.entries(), 1);
        assert!(cache.get(&key(5)).is_none());
        assert_eq!(cache.stats().quarantined, 1);
        // Fire cap exhausted: the rewrite is clean and served.
        cache.put(&key(5), r#"{"total_cycles":9}"#);
        assert!(cache.get(&key(5)).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_files_are_removed_on_open() {
        let dir = scratch_dir("tmp");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(format!("deadbeef.{TMP_EXT}")), b"half a record").unwrap();
        let (_, report) = open(&dir);
        assert_eq!(report.tmp_removed, 1);
        assert_eq!(report.scanned, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn decode_rejects_foreign_and_mismatched_bytes() {
        assert_eq!(decode(b"short"), Err(RecordError::Malformed));
        assert_eq!(decode(&[0u8; 64]), Err(RecordError::Malformed));
        let good = encode("k", "v");
        assert_eq!(decode(&good), Ok(("k", "v")));
        let mut wrong_version = good.clone();
        wrong_version[4] = 99;
        assert_eq!(decode(&wrong_version), Err(RecordError::Malformed));
        let mut flipped = good;
        let last = flipped.len() - 9;
        flipped[last] ^= 1;
        assert_eq!(decode(&flipped), Err(RecordError::Checksum));
    }
}
