//! `tpi-chaos` — a seeded chaos soak against an in-process service.
//!
//! The harness starts a real [`Server`] with a [`FaultPlan`] armed at
//! every injection site, hammers it with the retrying load generator,
//! pokes it with garbage bytes, shuts it down gracefully, and then
//! asserts the failure-isolation invariants the service promises:
//!
//! 1. **Every request is terminally answered** — each load-generator
//!    request ends in exactly one of: a valid 200, a structured non-2xx,
//!    an invalid body, or an exhausted-retries socket error. Nothing
//!    hangs.
//! 2. **No wedged slots** — after shutdown the in-flight table is empty:
//!    every flight slot was resolved (computed, failed, or terminally
//!    refused), so no waiter can ever be stuck.
//! 3. **The cache never lies** — every cached cell (minus the slots the
//!    plan deliberately corrupted, which it logs) is byte-identical to a
//!    fresh single-threaded [`Runner`] computing the same cell.
//! 4. **The server outlives garbage** — raw malformed bytes on the wire
//!    get a structured 400 or a clean close, and the service still
//!    answers `/healthz` afterwards.
//!
//! Runs are reproducible: the fault plan's decisions and the load
//! generator's retry jitter both derive from the one `--seed`.

use crate::fault::{FaultPlan, FaultSite};
use crate::loadgen::{self, LoadgenConfig, LoadgenReport, RetryPolicy};
use crate::pool::{CellError, CellStore};
use crate::server::{ServeConfig, ServeStats, Server};
use crate::wire::{render_cell, render_cell_error, CellKey};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use tpi::Runner;

/// Chaos-soak parameters.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for both the fault plan and the retry jitter.
    pub seed: u64,
    /// Concurrent load-generator connections.
    pub connections: usize,
    /// Requests per connection.
    pub requests_per_connection: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Server queue capacity, in cells.
    pub queue_cap: usize,
    /// Fault spec override; `None` uses [`default_spec`] with the seed.
    pub spec: Option<String>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 42,
            connections: 8,
            requests_per_connection: 6,
            workers: 4,
            queue_cap: 64,
            spec: None,
        }
    }
}

/// The default all-sites-armed fault spec for `seed`.
#[must_use]
pub fn default_spec(seed: u64) -> String {
    format!(
        "seed={seed},worker_panic=0.05,worker_exit=0.03,cell_latency=0.2:3,\
         cache_corrupt=0.05,conn_drop=0.05,resp_truncate=0.05,overload=0.1"
    )
}

/// One invariant's verdict.
#[derive(Debug, Clone)]
pub struct Invariant {
    /// What was asserted.
    pub name: &'static str,
    /// Whether it held.
    pub held: bool,
    /// Supporting numbers or the failure detail.
    pub detail: String,
}

/// Everything a chaos run observed.
#[derive(Debug)]
pub struct ChaosReport {
    /// The fault spec the run injected.
    pub spec: String,
    /// The load-generator tallies.
    pub load: LoadgenReport,
    /// The server's final stats line.
    pub stats: ServeStats,
    /// Fires per site, aligned with [`FaultSite::ALL`].
    pub faults_fired: [u64; FaultSite::COUNT],
    /// Cells byte-verified against a fresh serial runner.
    pub cells_verified: usize,
    /// Corrupted cells excluded from verification (the plan logged them).
    pub cells_corrupted: usize,
    /// Garbage probes sent.
    pub garbage_probes: usize,
    /// The invariant verdicts, in assertion order.
    pub invariants: Vec<Invariant>,
}

impl ChaosReport {
    /// Whether every invariant held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.invariants.iter().all(|i| i.held)
    }
}

impl std::fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "[tpi-chaos] spec: {}", self.spec)?;
        writeln!(
            f,
            "[tpi-chaos] load: {} requests, {} ok, {} retries, {} exhausted, {} io errors",
            self.load.requests,
            self.load.ok,
            self.load.retries,
            self.load.retries_exhausted,
            self.load.io_errors
        )?;
        for (status, n) in &self.load.non_2xx {
            writeln!(f, "[tpi-chaos]   non-2xx {status}: {n}")?;
        }
        let fired: Vec<String> = FaultSite::ALL
            .iter()
            .zip(self.faults_fired.iter())
            .filter(|(_, n)| **n > 0)
            .map(|(site, n)| format!("{}={n}", site.key()))
            .collect();
        writeln!(f, "[tpi-chaos] faults fired: {}", fired.join(" "))?;
        writeln!(
            f,
            "[tpi-chaos] hardening: {} cell panics, {} worker restarts",
            self.stats.cell_panics, self.stats.worker_restarts
        )?;
        writeln!(
            f,
            "[tpi-chaos] cache: {} cells verified byte-identical, {} corrupted slots excluded",
            self.cells_verified, self.cells_corrupted
        )?;
        for inv in &self.invariants {
            writeln!(
                f,
                "[tpi-chaos] {} {}: {}",
                if inv.held { "PASS" } else { "FAIL" },
                inv.name,
                inv.detail
            )?;
        }
        write!(
            f,
            "[tpi-chaos] {}",
            if self.passed() { "PASS" } else { "FAIL" }
        )
    }
}

/// Deterministic garbage the probe phase writes at the raw TCP level.
fn garbage_payloads() -> Vec<&'static [u8]> {
    vec![
        b"GARBAGE BYTES NOT HTTP\r\n\r\n",
        b"POST /v1/experiments HTTP/1.1\r\ncontent-length: nonsense\r\n\r\n",
        b"\x00\x01\x02\x03\xff\xfe HTTP?\r\n\r\n",
        // A truncated body: header promises more bytes than are sent.
        b"POST /v1/experiments HTTP/1.1\r\ncontent-length: 999\r\n\r\n{\"ker",
    ]
}

/// Writes one garbage payload and reports what came back: a structured
/// 4xx status line, or a clean close/timeout. Either is acceptable; the
/// point is the *server* must survive it.
fn probe_garbage(addr: SocketAddr, payload: &[u8]) -> Result<(), String> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))
        .map_err(|e| format!("probe connect failed: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut out = &stream;
    // The accept loop may deliberately drop the connection (conn_drop
    // fault): a write error is a valid outcome, not a probe failure.
    if out.write_all(payload).and_then(|()| out.flush()).is_err() {
        return Ok(());
    }
    let mut reader = BufReader::new(&stream);
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => Ok(()), // clean close
        Ok(_) => {
            if line.starts_with("HTTP/1.1 4") {
                // Drain politely; the server closes after the error.
                let mut rest = Vec::new();
                let _ = reader.read_to_end(&mut rest);
                Ok(())
            } else {
                Err(format!("garbage got unexpected response line {line:?}"))
            }
        }
        Err(_) => Ok(()), // timeout/reset — the connection died, fine
    }
}

/// `GET /healthz` with a few attempts, because the `conn_drop` fault can
/// eat any individual probe.
fn healthz_alive(addr: SocketAddr) -> bool {
    for _ in 0..10 {
        if let Ok(response) = loadgen::get(addr, "/healthz", Duration::from_secs(5)) {
            if response.status == 200 {
                return true;
            }
        }
    }
    false
}

/// Replays the cache snapshot against a fresh serial [`Runner`] and
/// returns `(verified, mismatches)`, skipping `corrupted` keys.
fn verify_cache(store: &CellStore, corrupted: &[CellKey]) -> (usize, Vec<String>) {
    let fresh = Runner::serial();
    let mut verified = 0usize;
    let mut mismatches = Vec::new();
    for (key, outcome) in store.snapshot() {
        if corrupted.contains(&key) {
            continue;
        }
        let served = match outcome.as_ref() {
            Ok(result) => render_cell(&key, result).render(),
            Err(CellError::Failed(message)) => render_cell_error(&key, message).render(),
            Err(other) => {
                mismatches.push(format!("{key:?}: transient outcome {other:?} was cached"));
                continue;
            }
        };
        let config = match key.config() {
            Ok(config) => config,
            Err(e) => {
                mismatches.push(format!("{key:?}: cached cell has invalid config: {e}"));
                continue;
            }
        };
        let recomputed = match fresh.run_kernel_safe(key.kernel, key.scale, &config) {
            Ok(Ok(result)) => render_cell(&key, &result).render(),
            Ok(Err(e)) => render_cell_error(&key, &e.to_string()).render(),
            Err(panic_message) => {
                mismatches.push(format!(
                    "{key:?}: serial recompute panicked: {panic_message}"
                ));
                continue;
            }
        };
        if served == recomputed {
            verified += 1;
        } else {
            mismatches.push(format!(
                "{key:?}: served bytes differ from serial recompute"
            ));
        }
    }
    (verified, mismatches)
}

/// Runs the full soak. See the [module docs](self) for what it asserts.
///
/// # Errors
///
/// Fails on setup problems (bad fault spec, bind failure) — invariant
/// violations are reported in the returned [`ChaosReport`], not as
/// errors.
pub fn run(config: &ChaosConfig) -> Result<ChaosReport, String> {
    let spec = config
        .spec
        .clone()
        .unwrap_or_else(|| default_spec(config.seed));
    let plan = Arc::new(FaultPlan::parse(&spec)?);
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: config.workers,
        queue_cap: config.queue_cap,
        request_timeout: Duration::from_secs(10),
        cell_delay: Duration::ZERO,
        fault: Some(Arc::clone(&plan)),
        ..ServeConfig::default()
    })
    .map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.addr();
    let store = server.cell_store();

    let load = loadgen::run(&LoadgenConfig {
        addr,
        connections: config.connections,
        requests_per_connection: config.requests_per_connection,
        timeout: Duration::from_secs(15),
        retry: RetryPolicy {
            budget: 6,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(100),
            seed: config.seed,
        },
    });

    let payloads = garbage_payloads();
    let garbage_probes = payloads.len();
    let mut probe_failures: Vec<String> = Vec::new();
    for payload in payloads {
        if let Err(e) = probe_garbage(addr, payload) {
            probe_failures.push(e);
        }
    }
    let alive_after_garbage = healthz_alive(addr);

    let stats = server.shutdown();
    let corrupted = plan.corrupted_cells();
    let (cells_verified, cache_mismatches) = verify_cache(&store, &corrupted);

    let answered = load.ok
        + load.invalid_bodies
        + load.io_errors
        + load.non_2xx.iter().map(|(_, n)| n).sum::<usize>();
    let mut invariants = vec![
        Invariant {
            name: "every request terminally answered",
            held: answered == load.requests,
            detail: format!("{answered}/{} accounted for", load.requests),
        },
        Invariant {
            name: "no wedged in-flight slots after drain",
            held: store.inflight_cells() == 0,
            detail: format!("{} slots still in flight", store.inflight_cells()),
        },
        Invariant {
            name: "cache byte-identical to a fresh serial runner",
            held: cache_mismatches.is_empty(),
            detail: if cache_mismatches.is_empty() {
                format!(
                    "{cells_verified} cells verified, {} corrupted excluded",
                    corrupted.len()
                )
            } else {
                cache_mismatches.join("; ")
            },
        },
        Invariant {
            name: "server survives garbage bytes",
            held: alive_after_garbage && probe_failures.is_empty(),
            detail: if probe_failures.is_empty() {
                format!(
                    "{garbage_probes} probes, healthz {}",
                    if alive_after_garbage { "ok" } else { "dead" }
                )
            } else {
                probe_failures.join("; ")
            },
        },
    ];
    // With worker_exit armed, at least one worker death should have been
    // supervised back to life in a soak of this size — but only assert
    // when the site is actually in the spec.
    if spec.contains("worker_exit") && stats.worker_restarts == 0 {
        let exits = plan.fired_counts()[FaultSite::WorkerExit.index()];
        invariants.push(Invariant {
            name: "supervision restarts dead workers",
            held: exits == 0,
            detail: if exits == 0 {
                "no worker exits fired this run".to_owned()
            } else {
                format!("{exits} worker exits fired but 0 restarts recorded")
            },
        });
    }

    Ok(ChaosReport {
        spec,
        load,
        stats,
        faults_fired: plan.fired_counts(),
        cells_verified,
        cells_corrupted: corrupted.len(),
        garbage_probes,
        invariants,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_parses_and_arms_every_site() {
        let plan = FaultPlan::parse(&default_spec(7)).unwrap();
        assert_eq!(plan.seed(), 7);
        // Smoke the grammar: at rate > 0 every site *can* fire; just
        // check a high-rate one actually does within a few hundred draws.
        let fired = (0..500).filter(|_| plan.fires(FaultSite::Overload)).count();
        assert!(fired > 10, "{fired} overload fires at rate 0.1");
    }

    #[test]
    fn a_tiny_chaos_run_passes_its_invariants() {
        // Keep it small: this is the in-tree smoke of the same harness
        // CI runs at full size.
        let report = run(&ChaosConfig {
            seed: 11,
            connections: 3,
            requests_per_connection: 2,
            workers: 2,
            queue_cap: 32,
            spec: None,
        })
        .expect("chaos harness sets up");
        assert!(report.passed(), "{report}");
        assert_eq!(report.load.requests, 6);
    }
}
