//! `tpi-chaos` — a seeded chaos soak against an in-process service.
//!
//! The harness starts a real [`Server`] with a [`FaultPlan`] armed at
//! every injection site, hammers it with the retrying load generator,
//! pokes it with garbage bytes, shuts it down gracefully, and then
//! asserts the failure-isolation invariants the service promises:
//!
//! 1. **Every request is terminally answered** — each load-generator
//!    request ends in exactly one of: a valid 200, a structured non-2xx,
//!    an invalid body, or an exhausted-retries socket error. Nothing
//!    hangs.
//! 2. **No wedged slots** — after shutdown the in-flight table is empty:
//!    every flight slot was resolved (computed, failed, or terminally
//!    refused), so no waiter can ever be stuck.
//! 3. **The cache never lies** — every cached cell (minus the slots the
//!    plan deliberately corrupted, which it logs) is byte-identical to a
//!    fresh single-threaded [`Runner`] computing the same cell.
//! 4. **The server outlives garbage** — raw malformed bytes on the wire
//!    get a structured 400 or a clean close, and the service still
//!    answers `/healthz` afterwards.
//!
//! Runs are reproducible: the fault plan's decisions and the load
//! generator's retry jitter both derive from the one `--seed`.

use crate::fault::{FaultPlan, FaultSite};
use crate::json::Json;
use crate::loadgen::{self, LoadgenConfig, LoadgenReport, RetryPolicy};
use crate::pool::{CellError, CellStore};
use crate::server::{ServeConfig, ServeStats, Server};
use crate::wire::{render_cell, render_cell_error, CellKey};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use tpi::Runner;

/// Chaos-soak parameters.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for both the fault plan and the retry jitter.
    pub seed: u64,
    /// Concurrent load-generator connections.
    pub connections: usize,
    /// Requests per connection.
    pub requests_per_connection: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Server queue capacity, in cells.
    pub queue_cap: usize,
    /// Fault spec override; `None` uses [`default_spec`] with the seed.
    pub spec: Option<String>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 42,
            connections: 8,
            requests_per_connection: 6,
            workers: 4,
            queue_cap: 64,
            spec: None,
        }
    }
}

/// The default all-sites-armed fault spec for `seed`.
#[must_use]
pub fn default_spec(seed: u64) -> String {
    format!(
        "seed={seed},worker_panic=0.05,worker_exit=0.03,cell_latency=0.2:3,\
         cache_corrupt=0.05,conn_drop=0.05,resp_truncate=0.05,overload=0.1"
    )
}

/// One invariant's verdict.
#[derive(Debug, Clone)]
pub struct Invariant {
    /// What was asserted.
    pub name: &'static str,
    /// Whether it held.
    pub held: bool,
    /// Supporting numbers or the failure detail.
    pub detail: String,
}

/// Everything a chaos run observed.
#[derive(Debug)]
pub struct ChaosReport {
    /// The fault spec the run injected.
    pub spec: String,
    /// The load-generator tallies.
    pub load: LoadgenReport,
    /// The server's final stats line.
    pub stats: ServeStats,
    /// Fires per site, aligned with [`FaultSite::ALL`].
    pub faults_fired: [u64; FaultSite::COUNT],
    /// Cells byte-verified against a fresh serial runner.
    pub cells_verified: usize,
    /// Corrupted cells excluded from verification (the plan logged them).
    pub cells_corrupted: usize,
    /// Garbage probes sent.
    pub garbage_probes: usize,
    /// The invariant verdicts, in assertion order.
    pub invariants: Vec<Invariant>,
}

impl ChaosReport {
    /// Whether every invariant held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.invariants.iter().all(|i| i.held)
    }
}

impl std::fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "[tpi-chaos] spec: {}", self.spec)?;
        writeln!(
            f,
            "[tpi-chaos] load: {} requests, {} ok, {} retries, {} exhausted, {} io errors",
            self.load.requests,
            self.load.ok,
            self.load.retries,
            self.load.retries_exhausted,
            self.load.io_errors
        )?;
        for (status, n) in &self.load.non_2xx {
            writeln!(f, "[tpi-chaos]   non-2xx {status}: {n}")?;
        }
        let fired: Vec<String> = FaultSite::ALL
            .iter()
            .zip(self.faults_fired.iter())
            .filter(|(_, n)| **n > 0)
            .map(|(site, n)| format!("{}={n}", site.key()))
            .collect();
        writeln!(f, "[tpi-chaos] faults fired: {}", fired.join(" "))?;
        writeln!(
            f,
            "[tpi-chaos] hardening: {} cell panics, {} worker restarts",
            self.stats.cell_panics, self.stats.worker_restarts
        )?;
        writeln!(
            f,
            "[tpi-chaos] cache: {} cells verified byte-identical, {} corrupted slots excluded",
            self.cells_verified, self.cells_corrupted
        )?;
        for inv in &self.invariants {
            writeln!(
                f,
                "[tpi-chaos] {} {}: {}",
                if inv.held { "PASS" } else { "FAIL" },
                inv.name,
                inv.detail
            )?;
        }
        write!(
            f,
            "[tpi-chaos] {}",
            if self.passed() { "PASS" } else { "FAIL" }
        )
    }
}

/// Deterministic garbage the probe phase writes at the raw TCP level.
fn garbage_payloads() -> Vec<&'static [u8]> {
    vec![
        b"GARBAGE BYTES NOT HTTP\r\n\r\n",
        b"POST /v1/experiments HTTP/1.1\r\ncontent-length: nonsense\r\n\r\n",
        b"\x00\x01\x02\x03\xff\xfe HTTP?\r\n\r\n",
        // A truncated body: header promises more bytes than are sent.
        b"POST /v1/experiments HTTP/1.1\r\ncontent-length: 999\r\n\r\n{\"ker",
    ]
}

/// Writes one garbage payload and reports what came back: a structured
/// 4xx status line, or a clean close/timeout. Either is acceptable; the
/// point is the *server* must survive it.
fn probe_garbage(addr: SocketAddr, payload: &[u8]) -> Result<(), String> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))
        .map_err(|e| format!("probe connect failed: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut out = &stream;
    // The accept loop may deliberately drop the connection (conn_drop
    // fault): a write error is a valid outcome, not a probe failure.
    if out.write_all(payload).and_then(|()| out.flush()).is_err() {
        return Ok(());
    }
    let mut reader = BufReader::new(&stream);
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => Ok(()), // clean close
        Ok(_) => {
            if line.starts_with("HTTP/1.1 4") {
                // Drain politely; the server closes after the error.
                let mut rest = Vec::new();
                let _ = reader.read_to_end(&mut rest);
                Ok(())
            } else {
                Err(format!("garbage got unexpected response line {line:?}"))
            }
        }
        Err(_) => Ok(()), // timeout/reset — the connection died, fine
    }
}

/// `GET /healthz` with a few attempts, because the `conn_drop` fault can
/// eat any individual probe.
fn healthz_alive(addr: SocketAddr) -> bool {
    for _ in 0..10 {
        if let Ok(response) = loadgen::get(addr, "/healthz", Duration::from_secs(5)) {
            if response.status == 200 {
                return true;
            }
        }
    }
    false
}

/// Replays the cache snapshot against a fresh serial [`Runner`] and
/// returns `(verified, mismatches)`, skipping `corrupted` keys.
fn verify_cache(store: &CellStore, corrupted: &[CellKey]) -> (usize, Vec<String>) {
    let fresh = Runner::serial();
    let mut verified = 0usize;
    let mut mismatches = Vec::new();
    for (key, outcome) in store.snapshot() {
        if corrupted.contains(&key) {
            continue;
        }
        let served = match outcome.as_ref() {
            Ok(value) => value.rendered(&key),
            Err(CellError::Failed(message)) => render_cell_error(&key, message).render(),
            Err(other) => {
                mismatches.push(format!("{key:?}: transient outcome {other:?} was cached"));
                continue;
            }
        };
        let config = match key.config() {
            Ok(config) => config,
            Err(e) => {
                mismatches.push(format!("{key:?}: cached cell has invalid config: {e}"));
                continue;
            }
        };
        let recomputed = match fresh.run_kernel_safe(key.kernel, key.scale, &config) {
            Ok(Ok(result)) => render_cell(&key, &result).render(),
            Ok(Err(e)) => render_cell_error(&key, &e.to_string()).render(),
            Err(panic_message) => {
                mismatches.push(format!(
                    "{key:?}: serial recompute panicked: {panic_message}"
                ));
                continue;
            }
        };
        if served == recomputed {
            verified += 1;
        } else {
            mismatches.push(format!(
                "{key:?}: served bytes differ from serial recompute"
            ));
        }
    }
    (verified, mismatches)
}

/// Runs the full soak. See the [module docs](self) for what it asserts.
///
/// # Errors
///
/// Fails on setup problems (bad fault spec, bind failure) — invariant
/// violations are reported in the returned [`ChaosReport`], not as
/// errors.
pub fn run(config: &ChaosConfig) -> Result<ChaosReport, String> {
    let spec = config
        .spec
        .clone()
        .unwrap_or_else(|| default_spec(config.seed));
    let plan = Arc::new(FaultPlan::parse(&spec)?);
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: config.workers,
        queue_cap: config.queue_cap,
        request_timeout: Duration::from_secs(10),
        cell_delay: Duration::ZERO,
        fault: Some(Arc::clone(&plan)),
        ..ServeConfig::default()
    })
    .map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.addr();
    let store = server.cell_store();

    let load = loadgen::run(&LoadgenConfig {
        addr,
        connections: config.connections,
        requests_per_connection: config.requests_per_connection,
        timeout: Duration::from_secs(15),
        retry: RetryPolicy {
            budget: 6,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(100),
            seed: config.seed,
        },
    });

    let payloads = garbage_payloads();
    let garbage_probes = payloads.len();
    let mut probe_failures: Vec<String> = Vec::new();
    for payload in payloads {
        if let Err(e) = probe_garbage(addr, payload) {
            probe_failures.push(e);
        }
    }
    let alive_after_garbage = healthz_alive(addr);

    let stats = server.shutdown();
    let corrupted = plan.corrupted_cells();
    let (cells_verified, cache_mismatches) = verify_cache(&store, &corrupted);

    let answered = load.ok
        + load.invalid_bodies
        + load.io_errors
        + load.non_2xx.iter().map(|(_, n)| n).sum::<usize>();
    let mut invariants = vec![
        Invariant {
            name: "every request terminally answered",
            held: answered == load.requests,
            detail: format!("{answered}/{} accounted for", load.requests),
        },
        Invariant {
            name: "no wedged in-flight slots after drain",
            held: store.inflight_cells() == 0,
            detail: format!("{} slots still in flight", store.inflight_cells()),
        },
        Invariant {
            name: "cache byte-identical to a fresh serial runner",
            held: cache_mismatches.is_empty(),
            detail: if cache_mismatches.is_empty() {
                format!(
                    "{cells_verified} cells verified, {} corrupted excluded",
                    corrupted.len()
                )
            } else {
                cache_mismatches.join("; ")
            },
        },
        Invariant {
            name: "server survives garbage bytes",
            held: alive_after_garbage && probe_failures.is_empty(),
            detail: if probe_failures.is_empty() {
                format!(
                    "{garbage_probes} probes, healthz {}",
                    if alive_after_garbage { "ok" } else { "dead" }
                )
            } else {
                probe_failures.join("; ")
            },
        },
    ];
    // With worker_exit armed, at least one worker death should have been
    // supervised back to life in a soak of this size — but only assert
    // when the site is actually in the spec.
    if spec.contains("worker_exit") && stats.worker_restarts == 0 {
        let exits = plan.fired_counts()[FaultSite::WorkerExit.index()];
        invariants.push(Invariant {
            name: "supervision restarts dead workers",
            held: exits == 0,
            detail: if exits == 0 {
                "no worker exits fired this run".to_owned()
            } else {
                format!("{exits} worker exits fired but 0 restarts recorded")
            },
        });
    }

    Ok(ChaosReport {
        spec,
        load,
        stats,
        faults_fired: plan.fired_counts(),
        cells_verified,
        cells_corrupted: corrupted.len(),
        garbage_probes,
        invariants,
    })
}

// ---------------------------------------------------------------------
// Fleet chaos: `tpi-chaos --router`
// ---------------------------------------------------------------------

/// Parameters for the replicated soak (`tpi-chaos --router`): real
/// `tpi-serve` child processes behind an in-process
/// [`Router`](crate::router::Router), with a
/// seeded `replica_kill` fault SIGKILLing one replica mid-burst.
#[derive(Debug, Clone)]
pub struct RouterChaosConfig {
    /// Seed for the fault plan, the victim choice, and retry jitter.
    pub seed: u64,
    /// Replica processes to spawn.
    pub replicas: usize,
    /// Concurrent load-generator connections per burst.
    pub connections: usize,
    /// Requests per connection per burst.
    pub requests_per_connection: usize,
    /// Worker threads per replica.
    pub workers: usize,
    /// Fault spec override; `None` uses [`default_router_spec`].
    pub spec: Option<String>,
    /// Path to the `tpi-serve` binary. `None` looks next to the current
    /// executable (the cargo target directory), which is right for the
    /// `tpi-chaos` binary; tests pass `CARGO_BIN_EXE_tpi-serve`.
    pub serve_bin: Option<std::path::PathBuf>,
    /// Root for the per-replica `--cache-dir`s. `None` uses a scratch
    /// directory under the system temp dir, removed on success.
    pub cache_root: Option<std::path::PathBuf>,
}

impl Default for RouterChaosConfig {
    fn default() -> Self {
        RouterChaosConfig {
            seed: 42,
            replicas: 3,
            connections: 8,
            requests_per_connection: 6,
            workers: 2,
            spec: None,
            serve_bin: None,
            cache_root: None,
        }
    }
}

/// The default fleet fault spec: kill exactly one replica, 300 ms into
/// the burst. (The per-replica process faults stay off — the point of
/// this soak is surviving *process* death, not re-testing the
/// single-server sites.)
#[must_use]
pub fn default_router_spec(seed: u64) -> String {
    format!("seed={seed},replica_kill=1:300@1")
}

/// Everything a fleet soak observed.
#[derive(Debug)]
pub struct RouterChaosReport {
    /// The fault spec the run injected.
    pub spec: String,
    /// Which replica the plan killed (`None` if the site never fired).
    pub victim: Option<usize>,
    /// The mid-kill burst tallies.
    pub load: LoadgenReport,
    /// The guaranteed post-kill burst tallies.
    pub load_after_kill: LoadgenReport,
    /// The router's final stats line.
    pub router: crate::router::RouterStats,
    /// The invariant verdicts, in assertion order.
    pub invariants: Vec<Invariant>,
}

impl RouterChaosReport {
    /// Whether every invariant held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.invariants.iter().all(|i| i.held)
    }

    /// The report as JSON — `tpi-chaos --router --out` writes this, and
    /// CI commits it as `results/router_bench.json`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let invariants: Vec<Json> = self
            .invariants
            .iter()
            .map(|i| {
                Json::obj([
                    ("name", Json::from(i.name)),
                    ("held", Json::Bool(i.held)),
                    ("detail", Json::from(i.detail.clone())),
                ])
            })
            .collect();
        Json::obj([
            ("spec", Json::from(self.spec.clone())),
            ("victim", self.victim.map_or(Json::Null, Json::from)),
            ("load", self.load.to_json()),
            ("load_after_kill", self.load_after_kill.to_json()),
            (
                "router",
                Json::obj([
                    (
                        "experiment_requests",
                        Json::from(self.router.experiment_requests),
                    ),
                    ("cells_forwarded", Json::from(self.router.cells_forwarded)),
                    ("cells_joined", Json::from(self.router.cells_joined)),
                    ("failovers", Json::from(self.router.failovers)),
                    (
                        "cells_unavailable",
                        Json::from(self.router.cells_unavailable),
                    ),
                    ("healthy_replicas", Json::from(self.router.healthy_replicas)),
                ]),
            ),
            ("invariants", Json::Arr(invariants)),
            ("passed", Json::Bool(self.passed())),
        ])
    }
}

impl std::fmt::Display for RouterChaosReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "[tpi-chaos --router] spec: {}", self.spec)?;
        match self.victim {
            Some(victim) => writeln!(f, "[tpi-chaos --router] victim: replica {victim}")?,
            None => writeln!(f, "[tpi-chaos --router] victim: none (site never fired)")?,
        }
        writeln!(
            f,
            "[tpi-chaos --router] burst: {} requests, {} ok, {} retries ({} io-level)",
            self.load.requests, self.load.ok, self.load.retries, self.load.io_retries
        )?;
        writeln!(
            f,
            "[tpi-chaos --router] post-kill burst: {} requests, {} ok, {} retries ({} io-level)",
            self.load_after_kill.requests,
            self.load_after_kill.ok,
            self.load_after_kill.retries,
            self.load_after_kill.io_retries
        )?;
        writeln!(f, "[tpi-chaos --router] {}", self.router)?;
        for inv in &self.invariants {
            writeln!(
                f,
                "[tpi-chaos --router] {} {}: {}",
                if inv.held { "PASS" } else { "FAIL" },
                inv.name,
                inv.detail
            )?;
        }
        write!(
            f,
            "[tpi-chaos --router] {}",
            if self.passed() { "PASS" } else { "FAIL" }
        )
    }
}

/// One spawned `tpi-serve` child and what we know about it.
struct ReplicaProc {
    child: std::sync::Mutex<std::process::Child>,
    addr: SocketAddr,
    cache_dir: std::path::PathBuf,
}

/// Where the `tpi-serve` binary lives: explicit config, or next to the
/// current executable.
fn serve_binary(config: &RouterChaosConfig) -> Result<std::path::PathBuf, String> {
    if let Some(bin) = &config.serve_bin {
        return Ok(bin.clone());
    }
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let sibling = me.with_file_name("tpi-serve");
    if sibling.exists() {
        Ok(sibling)
    } else {
        Err(format!(
            "cannot find tpi-serve next to {} — pass --serve-bin",
            me.display()
        ))
    }
}

/// Spawns one replica on an ephemeral port and parses its ready line.
fn spawn_replica(
    bin: &std::path::Path,
    cache_dir: &std::path::Path,
    workers: usize,
) -> Result<ReplicaProc, String> {
    let mut child = std::process::Command::new(bin)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            &workers.to_string(),
            "--cache-dir",
        ])
        .arg(cache_dir)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", bin.display()))?;
    let stdout = child.stdout.take().ok_or("no stdout pipe")?;
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .map_err(|e| format!("reading ready line: {e}"))?;
    // "tpi-serve listening on http://HOST:PORT"
    let addr = line
        .rsplit("http://")
        .next()
        .and_then(|a| a.trim().parse::<SocketAddr>().ok())
        .ok_or_else(|| format!("bad ready line {line:?}"))?;
    Ok(ReplicaProc {
        child: std::sync::Mutex::new(child),
        addr,
        cache_dir: cache_dir.to_path_buf(),
    })
}

fn kill_replica(replica: &ReplicaProc) {
    let mut child = tpi::lock_unpoisoned(&replica.child);
    let _ = child.kill();
    let _ = child.wait();
}

/// Reads one counter out of a Prometheus text body.
fn metric_value(metrics_text: &str, name: &str) -> Option<u64> {
    metrics_text
        .lines()
        .find(|line| line.starts_with(name) && line[name.len()..].starts_with(' '))
        .and_then(|line| line.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

fn scrape(addr: SocketAddr) -> Option<String> {
    let response = loadgen::get(addr, "/metrics", Duration::from_secs(5)).ok()?;
    (response.status == 200).then(|| String::from_utf8_lossy(&response.body).into_owned())
}

/// Polls the router's `/healthz` until `healthy_replicas` reaches
/// `want`, within `deadline_in`.
fn wait_for_healthy(router_addr: SocketAddr, want: usize, deadline_in: Duration) -> bool {
    let deadline = std::time::Instant::now() + deadline_in;
    while std::time::Instant::now() < deadline {
        if let Ok(response) = loadgen::get(router_addr, "/healthz", Duration::from_secs(2)) {
            if let Ok(doc) = crate::json::parse(&String::from_utf8_lossy(&response.body)) {
                if doc
                    .get("healthy_replicas")
                    .and_then(crate::json::Json::as_u64)
                    == Some(want as u64)
                {
                    return true;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    false
}

/// The fixed grid the warm-restart phase replays directly against the
/// victim: warmed before the kill, it must come back byte-identical and
/// compute-free from the disk cache after the restart.
const WARMUP_BODY: &str =
    r#"{"kernels":["FLO52","OCEAN"],"schemes":["TPI","HW"],"opt_levels":["full"],"procs":[8]}"#;

/// Runs the replicated soak. See [`RouterChaosConfig`] and the module
/// docs; the headline invariant is that SIGKILLing a replica mid-burst
/// costs **zero** failed client requests.
///
/// # Errors
///
/// Fails on setup problems (missing binary, bad spec, bind failure) —
/// invariant violations are reported in the [`RouterChaosReport`].
#[allow(clippy::too_many_lines)]
pub fn run_router(config: &RouterChaosConfig) -> Result<RouterChaosReport, String> {
    let spec = config
        .spec
        .clone()
        .unwrap_or_else(|| default_router_spec(config.seed));
    let plan = Arc::new(FaultPlan::parse(&spec)?);
    let bin = serve_binary(config)?;
    let n = config.replicas.max(1);
    let root = config.cache_root.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!(
            "tpi-router-chaos-{}-{}",
            std::process::id(),
            config.seed
        ))
    });

    let mut replicas = Vec::with_capacity(n);
    for i in 0..n {
        replicas.push(spawn_replica(
            &bin,
            &root.join(format!("r{i}")),
            config.workers,
        )?);
    }
    let kill_fleet = |replicas: &[ReplicaProc]| {
        for replica in replicas {
            kill_replica(replica);
        }
    };

    // The victim is a pure function of the seed; warm its disk cache
    // directly (bypassing the router) and record the served bytes —
    // the warm-restart phase must reproduce them without computing.
    let victim = (config.seed % n as u64) as usize;
    let warm_before = match loadgen::post(
        replicas[victim].addr,
        "/v1/experiments",
        WARMUP_BODY,
        Duration::from_secs(60),
    ) {
        Ok(response) if response.status == 200 => response.body,
        Ok(response) => {
            kill_fleet(&replicas);
            return Err(format!("warmup returned {}", response.status));
        }
        Err(e) => {
            kill_fleet(&replicas);
            return Err(format!("warmup failed: {e}"));
        }
    };

    let router = crate::router::Router::start(crate::router::RouterConfig {
        replicas: replicas.iter().map(|r| r.addr).collect(),
        probe_interval: Duration::from_millis(150),
        lease: Duration::from_millis(700),
        max_attempts: 2 * n as u32,
        retry: RetryPolicy {
            budget: 6,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(100),
            seed: config.seed,
        },
        ..crate::router::RouterConfig::default()
    })
    .map_err(|e| {
        kill_fleet(&replicas);
        format!("router bind failed: {e}")
    })?;
    let router_addr = router.addr();

    let load_config = LoadgenConfig {
        addr: router_addr,
        connections: config.connections,
        requests_per_connection: config.requests_per_connection,
        timeout: Duration::from_secs(30),
        retry: RetryPolicy {
            budget: 8,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(100),
            seed: config.seed,
        },
    };

    // Burst with the killer armed: once the router has seen traffic, the
    // plan's offset elapses and the victim is SIGKILLed mid-flight.
    let killed = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let load = std::thread::scope(|scope| {
        let killer = {
            let plan = Arc::clone(&plan);
            let killed = Arc::clone(&killed);
            let victim_proc = &replicas[victim];
            scope.spawn(move || {
                if !plan.fires(FaultSite::ReplicaKill) {
                    return;
                }
                let offset = plan.site_arg_ms(FaultSite::ReplicaKill).unwrap_or(300);
                // Wait for the burst to actually be underway before the
                // offset starts counting, so a fast burst still dies
                // mid-flight rather than after the fact.
                let wait_deadline = std::time::Instant::now() + Duration::from_secs(10);
                while std::time::Instant::now() < wait_deadline {
                    let seen = scrape(router_addr)
                        .and_then(|m| metric_value(&m, "tpi_router_forward_attempts_total"))
                        .unwrap_or(0);
                    if seen > 0 {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                std::thread::sleep(Duration::from_millis(offset));
                kill_replica(victim_proc);
                killed.store(true, std::sync::atomic::Ordering::Release);
            })
        };
        let load = loadgen::run(&load_config);
        killer.join().expect("killer thread");
        load
    });
    let kill_fired = killed.load(std::sync::atomic::Ordering::Acquire);

    // A second, smaller burst with the victim certainly dead: guarantees
    // post-kill traffic regardless of how the first burst raced the
    // killer, so the failover path is always exercised.
    let load_after_kill = loadgen::run(&LoadgenConfig {
        connections: 4,
        requests_per_connection: 3,
        ..load_config
    });

    let drained = kill_fired && wait_for_healthy(router_addr, n - 1, Duration::from_secs(10));

    // Warm restart: same binary, same --cache-dir. The replica must come
    // back serving the warmup grid byte-identically without recomputing
    // a single cell.
    let mut warm_detail = String::new();
    let warm_ok = kill_fired
        && match spawn_replica(&bin, &replicas[victim].cache_dir, config.workers) {
            Ok(restarted) => {
                let outcome = (|| -> Result<String, String> {
                    let response = loadgen::post(
                        restarted.addr,
                        "/v1/experiments",
                        WARMUP_BODY,
                        Duration::from_secs(60),
                    )
                    .map_err(|e| format!("restarted replica unreachable: {e}"))?;
                    if response.status != 200 {
                        return Err(format!("restarted replica returned {}", response.status));
                    }
                    if response.body != warm_before {
                        return Err("served bytes differ across the restart".to_owned());
                    }
                    let metrics =
                        scrape(restarted.addr).ok_or("restarted replica /metrics unreachable")?;
                    let computed =
                        metric_value(&metrics, "tpi_serve_cells_computed_total").unwrap_or(99);
                    let disk_hits =
                        metric_value(&metrics, "tpi_disk_cache_hits_total").unwrap_or(0);
                    if computed != 0 {
                        return Err(format!("{computed} cells recomputed after restart"));
                    }
                    if disk_hits == 0 {
                        return Err("no disk-cache hits after restart".to_owned());
                    }
                    Ok(format!(
                        "byte-identical, 0 recomputes, {disk_hits} disk hits"
                    ))
                })();
                kill_replica(&restarted);
                match outcome {
                    Ok(detail) => {
                        warm_detail = detail;
                        true
                    }
                    Err(e) => {
                        warm_detail = e;
                        false
                    }
                }
            }
            Err(e) => {
                warm_detail = format!("restart failed: {e}");
                false
            }
        };

    let router_inflight = router.inflight_cells();
    let stats = router.shutdown();
    kill_fleet(&replicas);
    if config.cache_root.is_none() {
        let _ = std::fs::remove_dir_all(&root);
    }

    let answered = |l: &LoadgenReport| {
        l.ok + l.invalid_bodies + l.io_errors + l.non_2xx.iter().map(|(_, c)| c).sum::<usize>()
    };
    let failed = |l: &LoadgenReport| l.requests - l.ok;
    let invariants = vec![
        Invariant {
            name: "replica kill fired",
            held: kill_fired,
            detail: if kill_fired {
                format!("replica {victim} SIGKILLed")
            } else {
                "the replica_kill site never fired".to_owned()
            },
        },
        Invariant {
            name: "zero failed client requests across replica death",
            held: failed(&load) == 0 && failed(&load_after_kill) == 0,
            detail: format!(
                "{}+{} failed of {}+{}",
                failed(&load),
                failed(&load_after_kill),
                load.requests,
                load_after_kill.requests
            ),
        },
        Invariant {
            name: "every request terminally answered",
            held: answered(&load) == load.requests
                && answered(&load_after_kill) == load_after_kill.requests,
            detail: format!(
                "{}+{} accounted for",
                answered(&load),
                answered(&load_after_kill)
            ),
        },
        Invariant {
            name: "failover engaged",
            held: stats.failovers > 0,
            detail: format!(
                "{} failovers, {} cells forwarded",
                stats.failovers, stats.cells_forwarded
            ),
        },
        Invariant {
            name: "dead replica drained from the ring",
            held: drained,
            detail: if drained {
                format!("{} of {n} replicas healthy after lease expiry", n - 1)
            } else {
                "victim still marked healthy past the lease".to_owned()
            },
        },
        Invariant {
            name: "no wedged router slots after drain",
            held: router_inflight == 0,
            detail: format!("{router_inflight} cells still in flight"),
        },
        Invariant {
            name: "killed replica restarts warm from its disk cache",
            held: warm_ok,
            detail: warm_detail,
        },
    ];

    Ok(RouterChaosReport {
        spec,
        victim: kill_fired.then_some(victim),
        load,
        load_after_kill,
        router: stats,
        invariants,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_parses_and_arms_every_site() {
        let plan = FaultPlan::parse(&default_spec(7)).unwrap();
        assert_eq!(plan.seed(), 7);
        // Smoke the grammar: at rate > 0 every site *can* fire; just
        // check a high-rate one actually does within a few hundred draws.
        let fired = (0..500).filter(|_| plan.fires(FaultSite::Overload)).count();
        assert!(fired > 10, "{fired} overload fires at rate 0.1");
    }

    #[test]
    fn a_tiny_chaos_run_passes_its_invariants() {
        // Keep it small: this is the in-tree smoke of the same harness
        // CI runs at full size.
        let report = run(&ChaosConfig {
            seed: 11,
            connections: 3,
            requests_per_connection: 2,
            workers: 2,
            queue_cap: 32,
            spec: None,
        })
        .expect("chaos harness sets up");
        assert!(report.passed(), "{report}");
        assert_eq!(report.load.requests, 6);
    }
}
