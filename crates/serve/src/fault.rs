//! `tpi-fault` — deterministic, seeded fault injection for the service.
//!
//! A [`FaultPlan`] names the places the service can be made to fail
//! ([`FaultSite`]) and decides, per occurrence, whether the fault fires.
//! Decisions are a pure function of `(seed, site, occurrence index)`:
//! each site keeps its own occurrence counter, and occurrence `n` fires
//! iff a [SplitMix64](https://prng.di.unimi.it/splitmix64.c) hash of the
//! triple falls under the site's configured rate. Two runs with the same
//! seed therefore inject the *same multiset of faults per site* no
//! matter how threads interleave — which is what makes `tpi-chaos` runs
//! reproducible and failure tests deterministic (`rate=1` with a fire
//! cap pins a fault to exactly the first occurrences).
//!
//! The plan is OFF by default and zero-cost when absent: the server
//! stores an `Option<Arc<FaultPlan>>`, and every injection point is a
//! single `if let Some(plan)` on the hot path — no hashing, no atomics,
//! no branches beyond the discriminant check when faults are disabled.
//!
//! # Spec grammar (`--faults`)
//!
//! Comma-separated `key=value` pairs. `seed=N` seeds the PRNG; every
//! other key is a site rule `site=RATE[:ARG_MS][@MAX]`:
//!
//! * `RATE` — probability per occurrence, `0.0..=1.0` (`1` = always).
//! * `:ARG_MS` — site argument in milliseconds. `cell_latency` and
//!   `disk_slow` read it as the injected delay; `replica_kill` reads it
//!   as the burst offset at which the fleet harness kills the replica.
//!   Other sites ignore it.
//! * `@MAX` — cap on total fires (`worker_panic=1@1`: exactly the first
//!   occurrence panics, then the site goes quiet).
//!
//! The persistence and fleet sites compose with the original seven:
//! `disk_torn_write` corrupts the bytes a disk-cache write leaves behind
//! (as a crash between write and fsync would), `disk_slow` stalls disk
//! reads/writes by `ARG_MS`, and `replica_kill` tells the router chaos
//! harness to SIGKILL a serving replica `ARG_MS` into the load burst.
//!
//! ```text
//! --faults seed=42,worker_panic=0.05,cell_latency=0.2:5,conn_drop=0.02
//! --faults seed=7,disk_torn_write=0.1,disk_slow=0.2:3,replica_kill=1:300@1
//! ```

use crate::wire::CellKey;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use tpi::lock_unpoisoned;

/// The marker every injected panic message starts with, so panic hooks
/// and log scrapers can tell injected faults from real bugs.
pub const INJECTED_PANIC_PREFIX: &str = "injected fault:";

/// A place in the service where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Panic in the middle of a cell computation (caught per cell; the
    /// cell's waiters get a structured `cell_panicked` error).
    WorkerPanic,
    /// Kill the worker thread after it finishes a cell (exercises the
    /// pool's supervision: the worker is respawned).
    WorkerExit,
    /// Extra latency added to a cell computation.
    CellLatency,
    /// Corrupt the result-cache slot a finished cell publishes.
    CacheCorrupt,
    /// Drop a freshly accepted connection before reading anything.
    ConnDrop,
    /// Truncate the response bytes mid-write and close the connection.
    RespTruncate,
    /// Refuse an experiment request with a transient 503 `overloaded`.
    Overload,
    /// Leave a torn (truncated, checksum-less) record behind instead of
    /// the atomic temp-file + fsync + rename a disk-cache write normally
    /// performs — what a crash between write and rename looks like on
    /// recovery.
    DiskTornWrite,
    /// Extra latency added to every disk-cache read and write.
    DiskSlow,
    /// Kill a serving replica mid-burst (fired by the `tpi-chaos
    /// --router` fleet harness, which SIGKILLs the chosen replica
    /// process `ARG_MS` into the load burst).
    ReplicaKill,
}

impl FaultSite {
    /// Every site, in spec/metrics order.
    pub const ALL: [FaultSite; 10] = [
        FaultSite::WorkerPanic,
        FaultSite::WorkerExit,
        FaultSite::CellLatency,
        FaultSite::CacheCorrupt,
        FaultSite::ConnDrop,
        FaultSite::RespTruncate,
        FaultSite::Overload,
        FaultSite::DiskTornWrite,
        FaultSite::DiskSlow,
        FaultSite::ReplicaKill,
    ];

    /// Number of sites (array dimension for per-site counters).
    pub const COUNT: usize = FaultSite::ALL.len();

    /// Stable spec / metrics-label name.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            FaultSite::WorkerPanic => "worker_panic",
            FaultSite::WorkerExit => "worker_exit",
            FaultSite::CellLatency => "cell_latency",
            FaultSite::CacheCorrupt => "cache_corrupt",
            FaultSite::ConnDrop => "conn_drop",
            FaultSite::RespTruncate => "resp_truncate",
            FaultSite::Overload => "overload",
            FaultSite::DiskTornWrite => "disk_torn_write",
            FaultSite::DiskSlow => "disk_slow",
            FaultSite::ReplicaKill => "replica_kill",
        }
    }

    /// Index into per-site arrays.
    #[must_use]
    pub fn index(self) -> usize {
        FaultSite::ALL
            .iter()
            .position(|&s| s == self)
            .expect("listed")
    }

    fn from_key(key: &str) -> Option<FaultSite> {
        FaultSite::ALL.into_iter().find(|s| s.key() == key)
    }
}

/// One site's rule: how often, how many times, with what argument.
#[derive(Debug, Clone, Copy)]
struct SiteRule {
    /// Fire probability per occurrence, `0.0..=1.0`.
    rate: f64,
    /// Cap on total fires (`u64::MAX` when uncapped).
    max_fires: u64,
    /// Site argument (milliseconds for `cell_latency`, unused elsewhere).
    arg_ms: u64,
}

/// SplitMix64: the standard 64-bit finalizer — a bijective hash good
/// enough to turn `(seed, site, n)` into an i.i.d.-looking stream. Also
/// the jitter source for the load generator's retry backoff. The
/// implementation is the workspace-wide one in `tpi-testkit`, re-exported
/// so the fault plan and the load generator keep hashing identically to
/// the seeded test corpora.
pub(crate) use tpi_testkit::splitmix64;

/// A seeded fault-injection plan. See the [module docs](self).
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: [Option<SiteRule>; FaultSite::COUNT],
    occurrences: [AtomicU64; FaultSite::COUNT],
    fired: [AtomicU64; FaultSite::COUNT],
    /// Cells whose cached result was corrupted — `tpi-chaos` excludes
    /// exactly these from its byte-identity check.
    corrupted: Mutex<Vec<CellKey>>,
}

impl FaultPlan {
    /// Parses a `--faults` spec (see the [module docs](self) for the
    /// grammar).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the first bad entry.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut seed = 0u64;
        let mut rules: [Option<SiteRule>; FaultSite::COUNT] = [None; FaultSite::COUNT];
        for entry in spec.split(',').filter(|e| !e.is_empty()) {
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry {entry:?} is not key=value"))?;
            if key == "seed" {
                seed = value
                    .parse()
                    .map_err(|_| format!("bad fault seed {value:?}"))?;
                continue;
            }
            let site =
                FaultSite::from_key(key).ok_or_else(|| format!("unknown fault site {key:?}"))?;
            let (value, max_fires) = match value.split_once('@') {
                Some((v, max)) => (
                    v,
                    max.parse()
                        .map_err(|_| format!("bad fire cap in {entry:?}"))?,
                ),
                None => (value, u64::MAX),
            };
            let (rate, arg_ms) = match value.split_once(':') {
                Some((r, arg)) => (
                    r,
                    arg.parse()
                        .map_err(|_| format!("bad site argument in {entry:?}"))?,
                ),
                None => (value, 0),
            };
            let rate: f64 = rate.parse().map_err(|_| format!("bad rate in {entry:?}"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("rate in {entry:?} must be within 0..=1"));
            }
            rules[site.index()] = Some(SiteRule {
                rate,
                max_fires,
                arg_ms,
            });
        }
        Ok(FaultPlan {
            seed,
            rules,
            occurrences: Default::default(),
            fired: Default::default(),
            corrupted: Mutex::new(Vec::new()),
        })
    }

    /// The plan's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Counts one occurrence of `site` and decides whether the fault
    /// fires — deterministically in the occurrence index (see the
    /// [module docs](self)).
    #[must_use]
    pub fn fires(&self, site: FaultSite) -> bool {
        let i = site.index();
        let Some(rule) = self.rules[i] else {
            return false;
        };
        let n = self.occurrences[i].fetch_add(1, Ordering::Relaxed);
        let hit = if rule.rate >= 1.0 {
            true
        } else {
            // 53 uniform mantissa bits → a float in [0, 1).
            #[allow(clippy::cast_precision_loss)]
            let u =
                (splitmix64(self.seed ^ ((i as u64) << 56) ^ n) >> 11) as f64 / (1u64 << 53) as f64;
            u < rule.rate
        };
        hit && self.fired[i].fetch_add(1, Ordering::Relaxed) < rule.max_fires
    }

    /// [`fires`](Self::fires) for `cell_latency`, returning the injected
    /// delay when it fires.
    #[must_use]
    pub fn cell_latency(&self) -> Option<Duration> {
        let rule = self.rules[FaultSite::CellLatency.index()]?;
        self.fires(FaultSite::CellLatency)
            .then(|| Duration::from_millis(rule.arg_ms))
    }

    /// [`fires`](Self::fires) for `disk_slow`, returning the injected
    /// disk-latency when it fires. Called once per disk-cache read or
    /// write.
    #[must_use]
    pub fn disk_latency(&self) -> Option<Duration> {
        let rule = self.rules[FaultSite::DiskSlow.index()]?;
        self.fires(FaultSite::DiskSlow)
            .then(|| Duration::from_millis(rule.arg_ms))
    }

    /// The `ARG_MS` argument configured for `site`, if the site is armed
    /// at all. Does not count an occurrence — the router chaos harness
    /// uses it to schedule `replica_kill` before the burst starts.
    #[must_use]
    pub fn site_arg_ms(&self, site: FaultSite) -> Option<u64> {
        self.rules[site.index()].map(|r| r.arg_ms)
    }

    /// [`fires`](Self::fires) for `cache_corrupt`. When it fires the
    /// key is recorded (see [`corrupted_cells`](Self::corrupted_cells))
    /// so verification layers know which slots to exclude.
    #[must_use]
    pub fn corrupts(&self, key: &CellKey) -> bool {
        if !self.fires(FaultSite::CacheCorrupt) {
            return false;
        }
        lock_unpoisoned(&self.corrupted).push(*key);
        true
    }

    /// Every cell whose cached result this plan corrupted, in injection
    /// order.
    #[must_use]
    pub fn corrupted_cells(&self) -> Vec<CellKey> {
        lock_unpoisoned(&self.corrupted).clone()
    }

    /// Total fires per site so far (spec order, aligned with
    /// [`FaultSite::ALL`]). Capped sites count only real fires.
    #[must_use]
    pub fn fired_counts(&self) -> [u64; FaultSite::COUNT] {
        let mut out = [0u64; FaultSite::COUNT];
        for (i, slot) in out.iter_mut().enumerate() {
            let fired = self.fired[i].load(Ordering::Relaxed);
            let cap = self.rules[i].map_or(0, |r| r.max_fires);
            *slot = fired.min(cap);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_never_fires() {
        let plan = FaultPlan::parse("seed=9").unwrap();
        for site in FaultSite::ALL {
            assert!(!plan.fires(site));
        }
        assert!(plan.cell_latency().is_none());
        assert_eq!(plan.fired_counts(), [0; FaultSite::COUNT]);
    }

    #[test]
    fn rate_one_always_fires_and_caps_apply() {
        let plan = FaultPlan::parse("seed=1,worker_panic=1@2").unwrap();
        assert!(plan.fires(FaultSite::WorkerPanic));
        assert!(plan.fires(FaultSite::WorkerPanic));
        assert!(!plan.fires(FaultSite::WorkerPanic));
        assert!(!plan.fires(FaultSite::WorkerPanic));
        assert_eq!(plan.fired_counts()[FaultSite::WorkerPanic.index()], 2);
        // Other sites stay silent.
        assert!(!plan.fires(FaultSite::ConnDrop));
    }

    #[test]
    fn decisions_are_deterministic_in_the_seed() {
        let spec = "seed=1234,conn_drop=0.3,overload=0.5";
        let a = FaultPlan::parse(spec).unwrap();
        let b = FaultPlan::parse(spec).unwrap();
        let fires_a: Vec<bool> = (0..200).map(|_| a.fires(FaultSite::ConnDrop)).collect();
        let fires_b: Vec<bool> = (0..200).map(|_| b.fires(FaultSite::ConnDrop)).collect();
        assert_eq!(fires_a, fires_b);
        let hits = fires_a.iter().filter(|&&f| f).count();
        // 0.3 over 200 draws: comfortably between 20 and 100.
        assert!((20..100).contains(&hits), "{hits} fires at rate 0.3");
        // A different seed produces a different pattern.
        let c = FaultPlan::parse("seed=99,conn_drop=0.3").unwrap();
        let fires_c: Vec<bool> = (0..200).map(|_| c.fires(FaultSite::ConnDrop)).collect();
        assert_ne!(fires_a, fires_c);
    }

    #[test]
    fn latency_site_carries_its_argument() {
        let plan = FaultPlan::parse("cell_latency=1:25").unwrap();
        assert_eq!(plan.cell_latency(), Some(Duration::from_millis(25)));
    }

    #[test]
    fn disk_sites_parse_and_carry_arguments() {
        let plan = FaultPlan::parse("seed=7,disk_slow=1:3,replica_kill=1:250@1").unwrap();
        assert_eq!(plan.disk_latency(), Some(Duration::from_millis(3)));
        assert_eq!(plan.site_arg_ms(FaultSite::ReplicaKill), Some(250));
        assert_eq!(plan.site_arg_ms(FaultSite::DiskTornWrite), None);
        assert!(plan.fires(FaultSite::ReplicaKill));
        assert!(!plan.fires(FaultSite::ReplicaKill), "fire cap respected");
        let torn = FaultPlan::parse("disk_torn_write=1@1").unwrap();
        assert!(torn.fires(FaultSite::DiskTornWrite));
        assert!(!torn.fires(FaultSite::DiskTornWrite));
    }

    #[test]
    fn corruption_is_logged_per_key() {
        let plan = FaultPlan::parse("cache_corrupt=1@1").unwrap();
        let key = CellKey {
            kernel: tpi_workloads::Kernel::Flo52,
            scale: tpi_workloads::Scale::Test,
            scheme: tpi_proto::SchemeId::TPI,
            opt_level: tpi_compiler::OptLevel::Full,
            procs: 16,
            line_words: 4,
            cache_bytes: 64 * 1024,
            tag_bits: 8,
            seed: 1,
        };
        assert!(plan.corrupts(&key));
        assert!(!plan.corrupts(&key));
        assert_eq!(plan.corrupted_cells(), vec![key]);
    }

    #[test]
    fn bad_specs_are_rejected_with_messages() {
        for (spec, needle) in [
            ("worker_panic", "not key=value"),
            ("seed=abc", "bad fault seed"),
            ("nosuch=1", "unknown fault site"),
            ("worker_panic=2", "within 0..=1"),
            ("worker_panic=x", "bad rate"),
            ("worker_panic=1@x", "bad fire cap"),
            ("cell_latency=1:x", "bad site argument"),
        ] {
            let err = FaultPlan::parse(spec).unwrap_err();
            assert!(err.contains(needle), "{spec}: {err}");
        }
    }
}
