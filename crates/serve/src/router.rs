//! `tpi-router` — a replicating HTTP front for a fleet of `tpi-serve`
//! replicas.
//!
//! ```text
//! clients ──► router accept loop ──► per-cell placement (hash ring)
//!                                        │ global single-flight
//!                                        ▼
//!                      replica A ◄── forward with per-attempt deadline
//!                      replica B ◄── failover on connect error / 5xx
//!                      replica C ◄── (jittered backoff between tries)
//!                          ▲
//!                  health prober (lease: miss it → draining)
//! ```
//!
//! The router owns three jobs and deliberately nothing else:
//!
//! 1. **Placement.** Every cell key hashes onto a consistent-hash ring
//!    ([`VNODES`] virtual nodes per replica), so identical cells always
//!    prefer the same replica and its memory/disk caches stay hot. When
//!    a replica dies, only its arc of the ring moves.
//! 2. **Health.** A prober thread `GET /healthz`s every replica each
//!    [`RouterConfig::probe_interval`]. A replica that has not answered
//!    within [`RouterConfig::lease`] is marked *draining*: it receives
//!    no new cells until a probe succeeds again. Probing is the only
//!    thing that changes health — forwarding failures just fail over,
//!    so one flaky connection can't flap the ring.
//! 3. **Failover.** A forward that dies on the socket or returns a 5xx
//!    is retried on the next healthy replica in ring order, with the
//!    same full-jitter backoff the load generator uses. Killing a
//!    replica mid-burst therefore costs latency, never correctness:
//!    `tpi-chaos --router` asserts exactly zero failed client requests.
//!
//! Identical in-flight cells are deduplicated *globally* at the router
//! (one upstream forward no matter how many clients ask), which is
//! strictly stronger than each replica's own single-flight table. The
//! router keeps no result cache — replicas own caching (memory LRU over
//! the crash-safe disk store, see [`crate::disk`]) — so a replica
//! restart's warmness stays observable end to end.
//!
//! When every replica is draining the router answers `503` with code
//! `all_replicas_draining` and a `Retry-After` header: an explicit,
//! immediate "come back later", never a hang.

use crate::disk::fnv1a;
use crate::fault::splitmix64;
use crate::http::{read_request, write_response, HttpError, Request};
use crate::json::{parse, Json};
use crate::loadgen::{self, RetryPolicy};
use crate::wire::{error_body, kernels_body, schemes_body, CellKey, GridRequest};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use tpi::{lock_unpoisoned, wait_timeout_unpoisoned, wait_unpoisoned};

/// Virtual nodes per replica on the consistent-hash ring. 64 keeps the
/// arc sizes within a few percent of even for small fleets while the
/// ring stays tiny (3 replicas → 192 points).
pub const VNODES: usize = 64;

/// Everything tunable about one router instance.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address. Port 0 asks the OS for an ephemeral port; the
    /// bound address is reported by [`Router::addr`].
    pub addr: String,
    /// The replica fleet. Fixed for the router's lifetime; *health* is
    /// dynamic, membership is not.
    pub replicas: Vec<SocketAddr>,
    /// How often the prober `GET /healthz`s each replica.
    pub probe_interval: Duration,
    /// A replica that has not answered a probe within this window is
    /// marked draining and its hash range reassigned.
    pub lease: Duration,
    /// Socket timeout (connect/read/write) for one forward attempt.
    pub attempt_timeout: Duration,
    /// Forward attempts per cell before giving up with 503
    /// `upstream_unavailable`.
    pub max_attempts: u32,
    /// Jittered backoff between forward attempts (the same policy the
    /// load generator uses; `Retry-After` from replicas is honored).
    pub retry: RetryPolicy,
    /// Per-request deadline: a request whose cells haven't all resolved
    /// by then gets a 504.
    pub request_timeout: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Largest grid a single request may expand to.
    pub max_cells_per_request: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_owned(),
            replicas: Vec::new(),
            probe_interval: Duration::from_millis(500),
            lease: Duration::from_millis(2500),
            attempt_timeout: Duration::from_secs(10),
            max_attempts: 4,
            retry: RetryPolicy::default(),
            request_timeout: Duration::from_secs(60),
            max_body_bytes: 1024 * 1024,
            max_cells_per_request: 1024,
        }
    }
}

/// The final stats line a graceful shutdown reports.
#[derive(Debug, Clone, Copy)]
pub struct RouterStats {
    /// Requests served on the experiments endpoint.
    pub experiment_requests: u64,
    /// Cells resolved by an upstream forward this router led.
    pub cells_forwarded: u64,
    /// Cells that joined an identical in-flight forward (global
    /// single-flight).
    pub cells_joined: u64,
    /// Forward attempts that failed and moved to another replica.
    pub failovers: u64,
    /// Cells that exhausted every attempt (`upstream_unavailable`).
    pub cells_unavailable: u64,
    /// Requests refused because every replica was draining.
    pub rejected_draining: u64,
    /// Replicas healthy at shutdown.
    pub healthy_replicas: usize,
}

impl std::fmt::Display for RouterStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[tpi-router final: {} experiment requests; cells {} forwarded / {} joined; \
             {} failovers / {} unavailable; {} refused draining; {} replicas healthy]",
            self.experiment_requests,
            self.cells_forwarded,
            self.cells_joined,
            self.failovers,
            self.cells_unavailable,
            self.rejected_draining,
            self.healthy_replicas,
        )
    }
}

/// One replica's dynamic health state. `last_ok` starts at router boot
/// so a fresh fleet gets a full lease of grace before the first verdict.
struct Replica {
    addr: SocketAddr,
    healthy: AtomicBool,
    last_ok: Mutex<Instant>,
}

/// How one cell's forward resolved. `Cell` is the happy path: the
/// replica's rendered cell object, spliced verbatim into the response
/// (parse→render is byte-stable, so routed bytes equal direct bytes).
#[derive(Debug, Clone)]
enum CellReply {
    Cell(Json),
    /// A terminal upstream response (e.g. a structured per-cell 4xx/5xx
    /// that retrying cannot fix) to relay as the whole response.
    Relay {
        status: u16,
        body: String,
    },
    /// Every attempt failed (socket error or retryable 5xx each time).
    Unavailable,
    /// No healthy replica existed when the cell needed one.
    AllDraining,
}

/// A slot one leader fills and any number of waiters block on — the
/// router-global single-flight table's value type.
struct CellSlot {
    state: Mutex<Option<CellReply>>,
    cond: Condvar,
}

impl CellSlot {
    fn new() -> Arc<CellSlot> {
        Arc::new(CellSlot {
            state: Mutex::new(None),
            cond: Condvar::new(),
        })
    }

    fn complete(&self, reply: CellReply) {
        *lock_unpoisoned(&self.state) = Some(reply);
        self.cond.notify_all();
    }

    fn wait_until(&self, deadline: Instant) -> Option<CellReply> {
        let mut state = lock_unpoisoned(&self.state);
        loop {
            if let Some(reply) = state.as_ref() {
                return Some(reply.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, timeout) = wait_timeout_unpoisoned(&self.cond, state, deadline - now);
            state = next;
            if timeout.timed_out() && state.is_none() {
                return None;
            }
        }
    }
}

/// Fixed-shape router counters, rendered on `GET /metrics`.
#[derive(Default)]
struct RouterMetrics {
    experiment_requests: AtomicU64,
    cells_forwarded: AtomicU64,
    cells_joined: AtomicU64,
    forward_attempts: AtomicU64,
    failovers: AtomicU64,
    cells_unavailable: AtomicU64,
    rejected_draining: AtomicU64,
    probes_ok: AtomicU64,
    probes_failed: AtomicU64,
    bad_requests: AtomicU64,
    rejected_timeout: AtomicU64,
}

struct RouterShared {
    config: RouterConfig,
    addr: SocketAddr,
    replicas: Vec<Replica>,
    /// `(point, replica index)` sorted by point; membership is static so
    /// the ring is built once.
    ring: Vec<(u64, usize)>,
    inflight: Mutex<HashMap<CellKey, Arc<CellSlot>>>,
    metrics: RouterMetrics,
    shutdown: AtomicBool,
    shutdown_signal: (Mutex<bool>, Condvar),
    active_conns: AtomicUsize,
    started: Instant,
}

impl RouterShared {
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        let (lock, cond) = &self.shutdown_signal;
        *lock_unpoisoned(lock) = true;
        cond.notify_all();
        // Poke the blocking accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    fn inflight(&self) -> MutexGuard<'_, HashMap<CellKey, Arc<CellSlot>>> {
        lock_unpoisoned(&self.inflight)
    }

    fn healthy_replicas(&self) -> usize {
        self.replicas
            .iter()
            .filter(|r| r.healthy.load(Ordering::Acquire))
            .count()
    }

    /// The replica preference order for `key`: ring order starting at
    /// the cell's hash point, each replica once. Health is filtered at
    /// attempt time, not here, so failover and re-probe compose.
    fn placement(&self, key: &CellKey) -> Vec<usize> {
        let hash = splitmix64(fnv1a(key.canonical().as_bytes()));
        let start = self.ring.partition_point(|&(point, _)| point < hash);
        let mut order = Vec::with_capacity(self.replicas.len());
        for i in 0..self.ring.len() {
            let (_, replica) = self.ring[(start + i) % self.ring.len()];
            if !order.contains(&replica) {
                order.push(replica);
                if order.len() == self.replicas.len() {
                    break;
                }
            }
        }
        order
    }
}

/// A running router instance.
pub struct Router {
    shared: Arc<RouterShared>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    prober_handle: Option<std::thread::JoinHandle<()>>,
}

impl Router {
    /// Binds, spawns the health prober and the accept loop, and returns.
    ///
    /// # Errors
    ///
    /// Fails if the replica list is empty or the address cannot be
    /// bound.
    pub fn start(config: RouterConfig) -> std::io::Result<Router> {
        if config.replicas.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a router needs at least one replica",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let now = Instant::now();
        let replicas: Vec<Replica> = config
            .replicas
            .iter()
            .map(|&addr| Replica {
                addr,
                healthy: AtomicBool::new(true),
                last_ok: Mutex::new(now),
            })
            .collect();
        let mut ring = Vec::with_capacity(replicas.len() * VNODES);
        for (index, replica) in replicas.iter().enumerate() {
            let base = fnv1a(replica.addr.to_string().as_bytes());
            let mut point = base;
            for _ in 0..VNODES {
                point = splitmix64(point);
                ring.push((point, index));
            }
        }
        ring.sort_unstable();
        let shared = Arc::new(RouterShared {
            config,
            addr,
            replicas,
            ring,
            inflight: Mutex::new(HashMap::new()),
            metrics: RouterMetrics::default(),
            shutdown: AtomicBool::new(false),
            shutdown_signal: (Mutex::new(false), Condvar::new()),
            active_conns: AtomicUsize::new(0),
            started: now,
        });
        let prober_shared = Arc::clone(&shared);
        let prober_handle = std::thread::Builder::new()
            .name("tpi-router-prober".to_owned())
            .spawn(move || prober_loop(&prober_shared))
            .expect("spawn prober");
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("tpi-router-accept".to_owned())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawn accept loop");
        Ok(Router {
            shared,
            accept_handle: Some(accept_handle),
            prober_handle: Some(prober_handle),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Replicas currently holding a health lease.
    #[must_use]
    pub fn healthy_replicas(&self) -> usize {
        self.shared.healthy_replicas()
    }

    /// Cells with a forward currently in flight. Zero once every client
    /// request has been terminally answered — `tpi-chaos --router`
    /// asserts exactly that at drain.
    #[must_use]
    pub fn inflight_cells(&self) -> usize {
        self.shared.inflight().len()
    }

    /// Blocks until some client posts `/admin/shutdown` (or another
    /// thread calls [`Router::shutdown`]).
    pub fn wait_for_shutdown_request(&self) {
        let (lock, cond) = &self.shared.shutdown_signal;
        let mut requested = lock_unpoisoned(lock);
        while !*requested {
            requested = wait_unpoisoned(cond, requested);
        }
    }

    /// Graceful shutdown: stop accepting, let open connections finish
    /// their in-flight responses (bounded), and report final counters.
    /// Replicas are *not* shut down — the router fronts the fleet, it
    /// does not own it.
    pub fn shutdown(mut self) -> RouterStats {
        self.shared.request_shutdown();
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.prober_handle.take() {
            let _ = handle.join();
        }
        let drain_deadline = Instant::now() + Duration::from_secs(10);
        while self.shared.active_conns.load(Ordering::Acquire) > 0
            && Instant::now() < drain_deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        let m = &self.shared.metrics;
        RouterStats {
            experiment_requests: m.experiment_requests.load(Ordering::Relaxed),
            cells_forwarded: m.cells_forwarded.load(Ordering::Relaxed),
            cells_joined: m.cells_joined.load(Ordering::Relaxed),
            failovers: m.failovers.load(Ordering::Relaxed),
            cells_unavailable: m.cells_unavailable.load(Ordering::Relaxed),
            rejected_draining: m.rejected_draining.load(Ordering::Relaxed),
            healthy_replicas: self.shared.healthy_replicas(),
        }
    }
}

/// Probes every replica, renews or expires leases, sleeps one interval
/// (woken early by shutdown), repeats. Probing is the *only* writer of
/// replica health.
fn prober_loop(shared: &Arc<RouterShared>) {
    let timeout = shared.config.probe_interval.max(Duration::from_millis(50));
    loop {
        if shared.shutting_down() {
            return;
        }
        for replica in &shared.replicas {
            let alive = loadgen::get(replica.addr, "/healthz", timeout)
                .map(|r| r.status == 200)
                .unwrap_or(false);
            if alive {
                shared.metrics.probes_ok.fetch_add(1, Ordering::Relaxed);
                *lock_unpoisoned(&replica.last_ok) = Instant::now();
                replica.healthy.store(true, Ordering::Release);
            } else {
                shared.metrics.probes_failed.fetch_add(1, Ordering::Relaxed);
                let expired = lock_unpoisoned(&replica.last_ok).elapsed() > shared.config.lease;
                if expired {
                    replica.healthy.store(false, Ordering::Release);
                }
            }
        }
        let (lock, cond) = &shared.shutdown_signal;
        let guard = lock_unpoisoned(lock);
        if *guard {
            return;
        }
        let _ = wait_timeout_unpoisoned(cond, guard, shared.config.probe_interval);
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<RouterShared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutting_down() {
                    return;
                }
                shared.active_conns.fetch_add(1, Ordering::AcqRel);
                let conn_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("tpi-router-conn".to_owned())
                    .spawn(move || {
                        connection_loop(&stream, &conn_shared);
                        conn_shared.active_conns.fetch_sub(1, Ordering::AcqRel);
                    });
                if spawned.is_err() {
                    shared.active_conns.fetch_sub(1, Ordering::AcqRel);
                }
            }
            Err(_) => {
                if shared.shutting_down() {
                    return;
                }
            }
        }
    }
}

/// How long a connection blocks in `read` before re-checking the
/// shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(100);

fn connection_loop(stream: &TcpStream, shared: &Arc<RouterShared>) {
    if stream.set_read_timeout(Some(IDLE_POLL)).is_err() {
        return;
    }
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader, shared.config.max_body_bytes) {
            Ok(request) => request,
            Err(HttpError::Idle) => {
                if shared.shutting_down() {
                    return;
                }
                continue;
            }
            Err(HttpError::Closed | HttpError::Io(_)) => return,
            Err(HttpError::Malformed(message)) => {
                let body = error_body("bad_request", &message);
                let mut out = stream;
                let _ = write_response(
                    &mut out,
                    400,
                    "application/json",
                    body.as_bytes(),
                    &[],
                    false,
                );
                return;
            }
            Err(HttpError::BodyTooLarge(n)) => {
                let body = error_body("body_too_large", &format!("{n} bytes exceeds the limit"));
                let mut out = stream;
                let _ = write_response(
                    &mut out,
                    413,
                    "application/json",
                    body.as_bytes(),
                    &[],
                    false,
                );
                return;
            }
        };
        let response = route(shared, &request);
        let keep_alive = request.keep_alive && !shared.shutting_down();
        let headers: Vec<(&str, String)> = response
            .extra_headers
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        let mut out = stream;
        if write_response(
            &mut out,
            response.status,
            response.content_type,
            response.body.as_bytes(),
            &headers,
            keep_alive,
        )
        .is_err()
            || !keep_alive
        {
            return;
        }
    }
}

struct RouteResponse {
    status: u16,
    content_type: &'static str,
    body: String,
    extra_headers: Vec<(&'static str, String)>,
}

impl RouteResponse {
    fn json(status: u16, body: String) -> RouteResponse {
        RouteResponse {
            status,
            content_type: "application/json",
            body,
            extra_headers: Vec::new(),
        }
    }

    fn retryable_503(body: String) -> RouteResponse {
        let mut response = RouteResponse::json(503, body);
        response.extra_headers.push(("retry-after", "1".to_owned()));
        response
    }
}

fn route(shared: &Arc<RouterShared>, request: &Request) -> RouteResponse {
    let path = request
        .target
        .split('?')
        .next()
        .unwrap_or(request.target.as_str());
    match (request.method.as_str(), path) {
        ("POST", "/v1/experiments") => {
            if shared.shutting_down() {
                return RouteResponse::json(
                    503,
                    error_body("shutting_down", "the router is shutting down"),
                );
            }
            handle_experiments(shared, &request.body)
        }
        // Discovery is served locally: the router links the same kernel
        // and scheme tables as every replica, so the bytes are identical
        // and the endpoints stay up even with the whole fleet draining.
        ("GET", "/v1/kernels") => RouteResponse::json(200, kernels_body()),
        ("GET", "/v1/schemes") => RouteResponse::json(200, schemes_body()),
        ("GET", "/healthz") => handle_healthz(shared),
        ("GET", "/metrics") => RouteResponse {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: render_metrics(shared),
            extra_headers: Vec::new(),
        },
        ("POST", "/admin/shutdown") => {
            shared.request_shutdown();
            RouteResponse::json(200, "{\"status\":\"shutting down\"}".to_owned())
        }
        (
            _,
            "/v1/experiments" | "/v1/kernels" | "/v1/schemes" | "/healthz" | "/metrics"
            | "/admin/shutdown",
        ) => RouteResponse::json(405, error_body("method_not_allowed", "wrong method")),
        _ => RouteResponse::json(
            404,
            error_body("not_found", &format!("no route for {path}")),
        ),
    }
}

fn handle_healthz(shared: &Arc<RouterShared>) -> RouteResponse {
    let replicas: Vec<Json> = shared
        .replicas
        .iter()
        .map(|r| {
            Json::obj([
                ("addr", Json::from(r.addr.to_string())),
                ("healthy", Json::Bool(r.healthy.load(Ordering::Acquire))),
            ])
        })
        .collect();
    let healthy = shared.healthy_replicas();
    let body = Json::obj([
        (
            "status",
            Json::from(if healthy > 0 { "ok" } else { "draining" }),
        ),
        (
            "uptime_seconds",
            Json::from(shared.started.elapsed().as_secs()),
        ),
        ("replicas", Json::Arr(replicas)),
        ("healthy_replicas", Json::from(healthy)),
        ("inflight_cells", Json::from(shared.inflight().len())),
    ])
    .render();
    RouteResponse::json(200, body)
}

fn render_metrics(shared: &Arc<RouterShared>) -> String {
    let m = &shared.metrics;
    let mut out = String::with_capacity(2048);
    let counters: [(&str, &str, u64); 11] = [
        (
            "tpi_router_experiment_requests_total",
            "Experiment requests handled by the router",
            m.experiment_requests.load(Ordering::Relaxed),
        ),
        (
            "tpi_router_cells_forwarded_total",
            "Cells resolved by an upstream forward",
            m.cells_forwarded.load(Ordering::Relaxed),
        ),
        (
            "tpi_router_cells_joined_total",
            "Cells that joined an identical in-flight forward",
            m.cells_joined.load(Ordering::Relaxed),
        ),
        (
            "tpi_router_forward_attempts_total",
            "Individual forward attempts, including retries",
            m.forward_attempts.load(Ordering::Relaxed),
        ),
        (
            "tpi_router_failovers_total",
            "Forward attempts that failed and moved to another replica",
            m.failovers.load(Ordering::Relaxed),
        ),
        (
            "tpi_router_cells_unavailable_total",
            "Cells that exhausted every forward attempt",
            m.cells_unavailable.load(Ordering::Relaxed),
        ),
        (
            "tpi_router_rejected_draining_total",
            "Requests refused because every replica was draining",
            m.rejected_draining.load(Ordering::Relaxed),
        ),
        (
            "tpi_router_rejected_timeout_total",
            "Requests that exceeded the router deadline",
            m.rejected_timeout.load(Ordering::Relaxed),
        ),
        (
            "tpi_router_probes_ok_total",
            "Health probes answered 200",
            m.probes_ok.load(Ordering::Relaxed),
        ),
        (
            "tpi_router_probes_failed_total",
            "Health probes that failed or timed out",
            m.probes_failed.load(Ordering::Relaxed),
        ),
        (
            "tpi_router_bad_requests_total",
            "Requests rejected with a 400",
            m.bad_requests.load(Ordering::Relaxed),
        ),
    ];
    for (name, help, value) in counters {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
        ));
    }
    out.push_str(
        "# HELP tpi_replica_healthy Whether the replica holds a health lease (1) or is draining (0)\n\
         # TYPE tpi_replica_healthy gauge\n",
    );
    for replica in &shared.replicas {
        let healthy = u64::from(replica.healthy.load(Ordering::Acquire));
        out.push_str(&format!(
            "tpi_replica_healthy{{replica=\"{}\"}} {healthy}\n",
            replica.addr
        ));
    }
    out.push_str(&format!(
        "# HELP tpi_router_uptime_seconds Seconds since the router started\n\
         # TYPE tpi_router_uptime_seconds gauge\n\
         tpi_router_uptime_seconds {}\n",
        shared.started.elapsed().as_secs()
    ));
    out
}

fn handle_experiments(shared: &Arc<RouterShared>, body: &[u8]) -> RouteResponse {
    shared
        .metrics
        .experiment_requests
        .fetch_add(1, Ordering::Relaxed);
    let bad = |code: &'static str, message: String| {
        shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
        RouteResponse::json(400, error_body(code, &message))
    };
    let Ok(text) = std::str::from_utf8(body) else {
        return bad("bad_json", "body is not UTF-8".to_owned());
    };
    let doc = match parse(text) {
        Ok(doc) => doc,
        Err(e) => return bad("bad_json", e.to_string()),
    };
    let grid = match GridRequest::parse(&doc) {
        Ok(grid) => grid,
        Err(e) => {
            shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            return RouteResponse::json(400, e.body());
        }
    };
    let cells = grid.cells();
    if cells.len() > shared.config.max_cells_per_request {
        return bad(
            "too_many_cells",
            format!(
                "{} cells exceeds the per-request limit of {}",
                cells.len(),
                shared.config.max_cells_per_request
            ),
        );
    }

    let deadline = Instant::now() + shared.config.request_timeout;
    let mut rendered = Vec::with_capacity(cells.len());
    for key in cells {
        let reply = resolve_cell(shared, key, deadline);
        match reply {
            Some(CellReply::Cell(json)) => rendered.push(json),
            Some(CellReply::Relay { status, body }) => {
                return RouteResponse::json(status, body);
            }
            Some(CellReply::Unavailable) => {
                return RouteResponse::retryable_503(error_body(
                    "upstream_unavailable",
                    "every forward attempt for a cell failed; retry after the suggested delay",
                ));
            }
            Some(CellReply::AllDraining) => {
                shared
                    .metrics
                    .rejected_draining
                    .fetch_add(1, Ordering::Relaxed);
                return RouteResponse::retryable_503(error_body(
                    "all_replicas_draining",
                    "no replica holds a health lease; retry after the suggested delay",
                ));
            }
            None => {
                shared
                    .metrics
                    .rejected_timeout
                    .fetch_add(1, Ordering::Relaxed);
                return RouteResponse::json(
                    504,
                    error_body(
                        "timeout",
                        "router deadline exceeded before all cells resolved",
                    ),
                );
            }
        }
    }
    let count = rendered.len();
    let body = Json::obj([("cells", Json::Arr(rendered)), ("count", Json::from(count))]).render();
    RouteResponse::json(200, body)
}

/// Resolves one cell through the global single-flight table: join an
/// identical in-flight forward, or lead one. `None` means the deadline
/// passed first.
fn resolve_cell(shared: &Arc<RouterShared>, key: CellKey, deadline: Instant) -> Option<CellReply> {
    let slot = {
        let mut inflight = shared.inflight();
        if let Some(slot) = inflight.get(&key) {
            shared.metrics.cells_joined.fetch_add(1, Ordering::Relaxed);
            let slot = Arc::clone(slot);
            drop(inflight);
            return slot.wait_until(deadline);
        }
        let slot = CellSlot::new();
        inflight.insert(key, Arc::clone(&slot));
        slot
    };
    let reply = forward_cell(shared, &key, deadline);
    // Publish before removing so joiners that already hold the slot and
    // latecomers that will miss the table both see a terminal answer.
    slot.complete(reply.clone());
    shared.inflight().remove(&key);
    if matches!(reply, CellReply::Cell(_)) {
        shared
            .metrics
            .cells_forwarded
            .fetch_add(1, Ordering::Relaxed);
    }
    Some(reply)
}

/// Leads one cell's forward: walk the healthy replicas in ring order,
/// one attempt each with a per-attempt deadline, jittered backoff
/// between attempts, until an attempt succeeds, a terminal upstream
/// answer arrives, or the budget runs out.
fn forward_cell(shared: &Arc<RouterShared>, key: &CellKey, deadline: Instant) -> CellReply {
    let order = shared.placement(key);
    let body = key.single_cell_body();
    let cell_hash = splitmix64(fnv1a(key.canonical().as_bytes()));
    let mut saw_healthy = false;
    for attempt in 1..=shared.config.max_attempts {
        if Instant::now() >= deadline {
            break;
        }
        // Re-evaluate health every attempt: a re-probed replica rejoins,
        // a drained one drops out, and the preference order stays stable.
        let candidates: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&i| shared.replicas[i].healthy.load(Ordering::Acquire))
            .collect();
        if candidates.is_empty() {
            return CellReply::AllDraining;
        }
        saw_healthy = true;
        let target = candidates[(attempt as usize - 1) % candidates.len()];
        let replica = &shared.replicas[target];
        shared
            .metrics
            .forward_attempts
            .fetch_add(1, Ordering::Relaxed);
        let timeout = shared
            .config
            .attempt_timeout
            .min(deadline.saturating_duration_since(Instant::now()))
            .max(Duration::from_millis(10));
        let mut suggested = None;
        match loadgen::post(replica.addr, "/v1/experiments", &body, timeout) {
            Ok(response) if response.status == 200 => {
                if let Some(cell) = extract_single_cell(&response.body) {
                    return CellReply::Cell(cell);
                }
                // A 200 with an unusable body is a replica bug; treat it
                // like a failed attempt and fail over.
            }
            Ok(response) if response.status >= 500 || response.status == 503 => {
                // Retryable upstream trouble (overload, shutdown, panic):
                // honor a suggested delay, then fail over.
                suggested = response
                    .header("retry-after")
                    .and_then(|v| v.trim().parse::<u64>().ok())
                    .map(Duration::from_secs);
            }
            Ok(response) => {
                // A structured 4xx for a request the router itself
                // validated is terminal — relay it rather than guessing.
                return CellReply::Relay {
                    status: response.status,
                    body: String::from_utf8_lossy(&response.body).into_owned(),
                };
            }
            Err(_) => {
                // Connect refused / reset / timed out: the classic
                // killed-replica signature. Fail over.
            }
        }
        shared.metrics.failovers.fetch_add(1, Ordering::Relaxed);
        if attempt < shared.config.max_attempts {
            std::thread::sleep(shared.config.retry.backoff(
                cell_hash as usize,
                target,
                attempt,
                suggested,
            ));
        }
    }
    shared
        .metrics
        .cells_unavailable
        .fetch_add(1, Ordering::Relaxed);
    if saw_healthy {
        CellReply::Unavailable
    } else {
        CellReply::AllDraining
    }
}

/// Pulls the single cell object out of a replica's grid response body.
fn extract_single_cell(body: &[u8]) -> Option<Json> {
    let text = std::str::from_utf8(body).ok()?;
    let doc = parse(text).ok()?;
    let cells = doc.get("cells")?.as_array()?;
    if cells.len() == 1 {
        Some(cells[0].clone())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_key(seed: u64) -> CellKey {
        let doc = parse(&format!(
            r#"{{"kernels":["FLO52"],"schemes":["TPI"],"seed":{seed}}}"#
        ))
        .unwrap();
        GridRequest::parse(&doc).unwrap().cells()[0]
    }

    fn ring_shared(replicas: &[&str]) -> RouterShared {
        let now = Instant::now();
        let replicas: Vec<Replica> = replicas
            .iter()
            .map(|a| Replica {
                addr: a.parse().unwrap(),
                healthy: AtomicBool::new(true),
                last_ok: Mutex::new(now),
            })
            .collect();
        let mut ring = Vec::new();
        for (index, replica) in replicas.iter().enumerate() {
            let mut point = fnv1a(replica.addr.to_string().as_bytes());
            for _ in 0..VNODES {
                point = splitmix64(point);
                ring.push((point, index));
            }
        }
        ring.sort_unstable();
        RouterShared {
            config: RouterConfig::default(),
            addr: "127.0.0.1:0".parse().unwrap(),
            replicas,
            ring,
            inflight: Mutex::new(HashMap::new()),
            metrics: RouterMetrics::default(),
            shutdown: AtomicBool::new(false),
            shutdown_signal: (Mutex::new(false), Condvar::new()),
            active_conns: AtomicUsize::new(0),
            started: now,
        }
    }

    #[test]
    fn placement_is_stable_and_covers_every_replica() {
        let shared = ring_shared(&["127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003"]);
        for seed in 0..20 {
            let key = test_key(seed);
            let order = shared.placement(&key);
            assert_eq!(order.len(), 3);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2], "a permutation of the fleet");
            assert_eq!(order, shared.placement(&key), "placement is deterministic");
        }
    }

    #[test]
    fn placement_spreads_cells_across_the_fleet() {
        let shared = ring_shared(&["127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003"]);
        let mut owners = [0usize; 3];
        for seed in 0..60 {
            owners[shared.placement(&test_key(seed))[0]] += 1;
        }
        assert!(
            owners.iter().all(|&n| n > 0),
            "60 distinct cells should land on every replica: {owners:?}"
        );
    }

    #[test]
    fn killing_a_replica_moves_only_its_cells() {
        let shared = ring_shared(&["127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003"]);
        let keys: Vec<CellKey> = (0..60).map(test_key).collect();
        let before: Vec<usize> = keys.iter().map(|k| shared.placement(k)[0]).collect();
        // A draining replica keeps its ring points; only the healthy
        // filter at attempt time changes. The *preference order* of the
        // survivors must be untouched for cells they already owned.
        for (key, &owner) in keys.iter().zip(&before) {
            if owner != 1 {
                let order = shared.placement(key);
                let survivors: Vec<usize> = order.iter().copied().filter(|&i| i != 1).collect();
                assert_eq!(
                    survivors.first(),
                    Some(&owner),
                    "cells not owned by the dead replica keep their owner"
                );
            }
        }
    }

    #[test]
    fn cell_slot_joins_see_the_leaders_reply() {
        let slot = CellSlot::new();
        let waiter = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || slot.wait_until(Instant::now() + Duration::from_secs(5)))
        };
        slot.complete(CellReply::Unavailable);
        assert!(matches!(
            waiter.join().unwrap(),
            Some(CellReply::Unavailable)
        ));
        // A slot that is never filled times out instead of hanging.
        let empty = CellSlot::new();
        assert!(empty
            .wait_until(Instant::now() + Duration::from_millis(20))
            .is_none());
    }

    #[test]
    fn extract_single_cell_accepts_exactly_one_cell() {
        let one = br#"{"cells":[{"kernel":"FLO52","total_cycles":1}],"count":1}"#;
        assert!(extract_single_cell(one).is_some());
        for bad in [
            &b"not json"[..],
            br#"{"cells":[],"count":0}"#,
            br#"{"cells":[{},{}],"count":2}"#,
            br#"{"count":1}"#,
        ] {
            assert!(extract_single_cell(bad).is_none());
        }
    }
}
