//! The load generator behind `tpi-loadgen`: N concurrent keep-alive
//! connections of mixed grid requests, reporting throughput and latency
//! percentiles as JSON.
//!
//! The request mix deliberately overlaps across connections: several
//! connections send byte-identical grids, so a healthy server shows
//! single-flight joins and result-cache hits in `/metrics` under load.

use crate::http::{read_response, Response};
use crate::json::{parse, Json};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server to drive.
    pub addr: SocketAddr,
    /// Concurrent connections.
    pub connections: usize,
    /// Requests each connection issues sequentially.
    pub requests_per_connection: usize,
    /// Socket timeout for connect/read/write.
    pub timeout: Duration,
}

impl LoadgenConfig {
    /// Defaults for `addr`: 64 connections × 8 requests.
    #[must_use]
    pub fn new(addr: SocketAddr) -> LoadgenConfig {
        LoadgenConfig {
            addr,
            connections: 64,
            requests_per_connection: 8,
            timeout: Duration::from_secs(120),
        }
    }
}

/// The grid-request mix, as JSON bodies. Kept small enough that every
/// template's cells fit default queue bounds, and repeated across
/// connections so deduplication is observable.
#[must_use]
pub fn templates() -> Vec<&'static str> {
    vec![
        r#"{"kernels":["FLO52"],"schemes":["TPI","HW"]}"#,
        r#"{"kernels":["OCEAN"],"schemes":["TPI"],"opt_levels":["naive","full"]}"#,
        r#"{"kernels":["TRFD","QCD2"],"schemes":["SC","TPI"]}"#,
        r#"{"kernels":["SPEC77"],"schemes":["BASE","TPI"],"procs":[8,16]}"#,
        r#"{"kernels":["ARC2D"],"schemes":["TPI","HW"],"line_words":8}"#,
    ]
}

/// Outcome of one load run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Connections driven.
    pub connections: usize,
    /// Requests attempted.
    pub requests: usize,
    /// 200 responses with a well-formed `cells` body.
    pub ok: usize,
    /// Non-2xx responses (by status).
    pub non_2xx: Vec<(u16, usize)>,
    /// Responses with 2xx status but an invalid body.
    pub invalid_bodies: usize,
    /// Requests that died on a socket error.
    pub io_errors: usize,
    /// Wall-clock seconds for the whole run.
    pub elapsed_seconds: f64,
    /// Successful requests per second.
    pub throughput_rps: f64,
    /// Latency percentiles over successful requests, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// Worst latency, milliseconds.
    pub max_ms: f64,
}

impl LoadgenReport {
    /// The report as a JSON object (what `tpi-loadgen` prints and writes
    /// to `results/serve_bench.json`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let non_2xx: Vec<Json> = self
            .non_2xx
            .iter()
            .map(|(status, n)| {
                Json::obj([
                    ("status", Json::from(u64::from(*status))),
                    ("count", Json::from(*n)),
                ])
            })
            .collect();
        Json::obj([
            ("connections", Json::from(self.connections)),
            ("requests", Json::from(self.requests)),
            ("ok", Json::from(self.ok)),
            ("non_2xx", Json::Arr(non_2xx)),
            ("invalid_bodies", Json::from(self.invalid_bodies)),
            ("io_errors", Json::from(self.io_errors)),
            ("elapsed_seconds", Json::from(self.elapsed_seconds)),
            ("throughput_rps", Json::from(self.throughput_rps)),
            (
                "latency_ms",
                Json::obj([
                    ("p50", Json::from(self.p50_ms)),
                    ("p95", Json::from(self.p95_ms)),
                    ("p99", Json::from(self.p99_ms)),
                    ("mean", Json::from(self.mean_ms)),
                    ("max", Json::from(self.max_ms)),
                ]),
            ),
        ])
    }
}

#[derive(Default)]
struct Tally {
    latencies: Vec<Duration>,
    non_2xx: Vec<(u16, usize)>,
    invalid_bodies: usize,
    io_errors: usize,
}

impl Tally {
    fn count_status(&mut self, status: u16) {
        if let Some(entry) = self.non_2xx.iter_mut().find(|(s, _)| *s == status) {
            entry.1 += 1;
        } else {
            self.non_2xx.push((status, 1));
        }
    }

    fn merge(&mut self, other: Tally) {
        self.latencies.extend(other.latencies);
        for (status, n) in other.non_2xx {
            if let Some(entry) = self.non_2xx.iter_mut().find(|(s, _)| *s == status) {
                entry.1 += n;
            } else {
                self.non_2xx.push((status, n));
            }
        }
        self.invalid_bodies += other.invalid_bodies;
        self.io_errors += other.io_errors;
    }
}

/// Sends one request on an open keep-alive connection and reads the
/// response.
///
/// # Errors
///
/// Propagates socket failures.
pub fn request_on(
    stream: &TcpStream,
    reader: &mut BufReader<&TcpStream>,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<Response> {
    let mut out = stream;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: tpi-serve\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    io::Write::write_all(&mut out, head.as_bytes())?;
    io::Write::write_all(&mut out, body.as_bytes())?;
    io::Write::flush(&mut out)?;
    read_response(reader)
}

/// One-shot GET against the server (fresh connection) — used to scrape
/// `/healthz` and `/metrics`.
///
/// # Errors
///
/// Propagates socket failures.
pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> io::Result<Response> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut reader = BufReader::new(&stream);
    request_on(&stream, &mut reader, "GET", path, "")
}

/// One-shot POST against the server (fresh connection).
///
/// # Errors
///
/// Propagates socket failures.
pub fn post(addr: SocketAddr, path: &str, body: &str, timeout: Duration) -> io::Result<Response> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut reader = BufReader::new(&stream);
    request_on(&stream, &mut reader, "POST", path, body)
}

fn valid_grid_body(body: &[u8]) -> bool {
    std::str::from_utf8(body)
        .ok()
        .and_then(|text| parse(text).ok())
        .and_then(|doc| doc.get("cells").map(|cells| cells.as_array().is_some()))
        .unwrap_or(false)
}

fn drive_connection(config: &LoadgenConfig, conn_index: usize, mix: &[&str]) -> Tally {
    let mut tally = Tally::default();
    let stream = match TcpStream::connect_timeout(&config.addr, config.timeout) {
        Ok(s) => s,
        Err(_) => {
            tally.io_errors += config.requests_per_connection;
            return tally;
        }
    };
    let _ = stream.set_read_timeout(Some(config.timeout));
    let _ = stream.set_write_timeout(Some(config.timeout));
    let mut reader = BufReader::new(&stream);
    for i in 0..config.requests_per_connection {
        let body = mix[(conn_index + i) % mix.len()];
        let started = Instant::now();
        match request_on(&stream, &mut reader, "POST", "/v1/experiments", body) {
            Ok(response) if response.status == 200 => {
                if valid_grid_body(&response.body) {
                    tally.latencies.push(started.elapsed());
                } else {
                    tally.invalid_bodies += 1;
                }
            }
            Ok(response) => tally.count_status(response.status),
            Err(_) => {
                tally.io_errors += 1;
                return tally; // the connection is gone
            }
        }
    }
    tally
}

fn percentile(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_secs_f64() * 1e3
}

/// Runs the whole load: `connections` threads, each issuing
/// `requests_per_connection` requests from the template mix.
#[must_use]
pub fn run(config: &LoadgenConfig) -> LoadgenReport {
    let mix = templates();
    let merged = Mutex::new(Tally::default());
    let started = Instant::now();
    std::thread::scope(|scope| {
        for conn_index in 0..config.connections {
            let mix = &mix;
            let merged = &merged;
            scope.spawn(move || {
                let tally = drive_connection(config, conn_index, mix);
                merged
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .merge(tally);
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    let tally = merged
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut latencies = tally.latencies;
    latencies.sort_unstable();
    let ok = latencies.len();
    #[allow(clippy::cast_precision_loss)]
    let mean_ms = if ok == 0 {
        0.0
    } else {
        latencies.iter().map(Duration::as_secs_f64).sum::<f64>() / ok as f64 * 1e3
    };
    #[allow(clippy::cast_precision_loss)]
    LoadgenReport {
        connections: config.connections,
        requests: config.connections * config.requests_per_connection,
        ok,
        non_2xx: tally.non_2xx,
        invalid_bodies: tally.invalid_bodies,
        io_errors: tally.io_errors,
        elapsed_seconds: elapsed,
        throughput_rps: if elapsed > 0.0 {
            ok as f64 / elapsed
        } else {
            0.0
        },
        p50_ms: percentile(&latencies, 0.50),
        p95_ms: percentile(&latencies, 0.95),
        p99_ms: percentile(&latencies, 0.99),
        mean_ms,
        max_ms: latencies.last().map_or(0.0, |d| d.as_secs_f64() * 1e3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert!((percentile(&sorted, 0.50) - 50.0).abs() < 1e-9);
        assert!((percentile(&sorted, 0.95) - 95.0).abs() < 1e-9);
        assert!((percentile(&sorted, 0.99) - 99.0).abs() < 1e-9);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn report_renders_as_json() {
        let report = LoadgenReport {
            connections: 2,
            requests: 4,
            ok: 4,
            non_2xx: vec![(503, 1)],
            invalid_bodies: 0,
            io_errors: 0,
            elapsed_seconds: 1.0,
            throughput_rps: 4.0,
            p50_ms: 1.5,
            p95_ms: 2.0,
            p99_ms: 2.5,
            mean_ms: 1.6,
            max_ms: 2.5,
        };
        let doc = report.to_json();
        assert_eq!(doc.get("ok").unwrap().as_u64(), Some(4));
        assert!(doc.render().contains("\"p99\":2.5"));
    }

    #[test]
    fn templates_are_valid_grid_requests() {
        use crate::wire::GridRequest;
        for body in templates() {
            let doc = parse(body).unwrap();
            let grid = GridRequest::parse(&doc).unwrap_or_else(|e| panic!("{body}: {}", e.message));
            assert!(!grid.cells().is_empty());
        }
    }
}
