//! The load generator behind `tpi-loadgen`: N concurrent keep-alive
//! connections of mixed grid requests, reporting throughput and latency
//! percentiles as JSON.
//!
//! The request mix deliberately overlaps across connections: several
//! connections send byte-identical grids, so a healthy server shows
//! single-flight joins and result-cache hits in `/metrics` under load.
//!
//! Transient failures are retried under a [`RetryPolicy`]: exponential
//! backoff with full jitter (deterministically seeded, so two runs with
//! the same seed sleep the same schedule), a per-request retry budget,
//! and `Retry-After` honored when the server sends one. Retryable
//! outcomes are connection-level failures — refused connections, resets
//! mid-body, timeouts — for which the connection is torn down and
//! re-established, 503 `overloaded` / `upstream_unavailable`
//! backpressure, and 500 `cell_panicked` (the service guarantees a
//! panicked cell is never cached, so a retry recomputes it). Everything
//! else — 4xx, 503 `shutting_down` — is terminal. Connection-level
//! retried attempts are counted separately
//! ([`LoadgenReport::io_retries`]) from HTTP-level ones, so a run
//! against a replica that was killed mid-burst shows exactly how many
//! attempts died on the socket versus backpressure.

use crate::fault::splitmix64;
use crate::http::{read_response, Response};
use crate::json::{parse, Json};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// When and how hard to retry a failed request.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries allowed per request on top of the first attempt
    /// (0 = never retry).
    pub budget: u32,
    /// Backoff before retry `k` is drawn uniformly from
    /// `0..=min(max_backoff, base_backoff * 2^(k-1))` — "full jitter".
    pub base_backoff: Duration,
    /// Hard cap on any single backoff sleep, including server-suggested
    /// `Retry-After` delays.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            budget: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry `attempt` (1-based) of request
    /// `(conn_index, request_index)`: full-jitter exponential backoff,
    /// raised to the server's `Retry-After` suggestion when present, and
    /// always capped by [`max_backoff`](Self::max_backoff).
    #[must_use]
    pub fn backoff(
        &self,
        conn_index: usize,
        request_index: usize,
        attempt: u32,
        retry_after: Option<Duration>,
    ) -> Duration {
        let ceiling = self
            .base_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16))
            .min(self.max_backoff);
        let jitter = if ceiling.is_zero() {
            Duration::ZERO
        } else {
            let draw = splitmix64(
                self.seed
                    ^ ((conn_index as u64) << 40)
                    ^ ((request_index as u64) << 20)
                    ^ u64::from(attempt),
            );
            Duration::from_nanos(draw % (ceiling.as_nanos() as u64 + 1))
        };
        jitter
            .max(retry_after.unwrap_or(Duration::ZERO))
            .min(self.max_backoff)
    }
}

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server to drive.
    pub addr: SocketAddr,
    /// Concurrent connections.
    pub connections: usize,
    /// Requests each connection issues sequentially.
    pub requests_per_connection: usize,
    /// Socket timeout for connect/read/write.
    pub timeout: Duration,
    /// Retry behaviour for transient failures.
    pub retry: RetryPolicy,
}

impl LoadgenConfig {
    /// Defaults for `addr`: 64 connections × 8 requests.
    #[must_use]
    pub fn new(addr: SocketAddr) -> LoadgenConfig {
        LoadgenConfig {
            addr,
            connections: 64,
            requests_per_connection: 8,
            timeout: Duration::from_secs(120),
            retry: RetryPolicy::default(),
        }
    }
}

/// The grid-request mix, as JSON bodies. Kept small enough that every
/// template's cells fit default queue bounds, and repeated across
/// connections so deduplication is observable.
#[must_use]
pub fn templates() -> Vec<&'static str> {
    vec![
        r#"{"kernels":["FLO52"],"schemes":["TPI","HW"]}"#,
        r#"{"kernels":["OCEAN"],"schemes":["TPI"],"opt_levels":["naive","full"]}"#,
        r#"{"kernels":["TRFD","QCD2"],"schemes":["SC","TPI"]}"#,
        r#"{"kernels":["SPEC77"],"schemes":["BASE","TPI"],"procs":[8,16]}"#,
        r#"{"kernels":["ARC2D"],"schemes":["TPI","HW"],"line_words":8}"#,
        r#"{"kernels":["FLO52"],"schemes":["tardis","hyb"]}"#,
    ]
}

/// Outcome of one load run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Connections driven.
    pub connections: usize,
    /// Requests attempted.
    pub requests: usize,
    /// 200 responses with a well-formed `cells` body.
    pub ok: usize,
    /// Non-2xx responses (by status) that ended a request — retried
    /// attempts are counted in `retries`, not here.
    pub non_2xx: Vec<(u16, usize)>,
    /// Responses with 2xx status but an invalid body.
    pub invalid_bodies: usize,
    /// Requests that died on a socket error after exhausting retries.
    pub io_errors: usize,
    /// Retried attempts across all requests (HTTP-level and
    /// connection-level together).
    pub retries: u64,
    /// The subset of [`retries`](Self::retries) whose failed attempt
    /// died at the connection level (refused, reset mid-body, timed
    /// out) rather than on a retryable HTTP status.
    pub io_retries: u64,
    /// Requests whose retry budget ran out while still failing
    /// transiently.
    pub retries_exhausted: usize,
    /// Histogram of attempts per request: `(attempts, requests)` pairs,
    /// ascending (1 = succeeded or terminally failed first try).
    pub attempts_histogram: Vec<(u32, usize)>,
    /// Wall-clock seconds for the whole run.
    pub elapsed_seconds: f64,
    /// Successful requests per second.
    pub throughput_rps: f64,
    /// Latency percentiles over successful requests, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// Worst latency, milliseconds.
    pub max_ms: f64,
}

impl LoadgenReport {
    /// The report as a JSON object (what `tpi-loadgen` prints and writes
    /// to `results/serve_bench.json`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let non_2xx: Vec<Json> = self
            .non_2xx
            .iter()
            .map(|(status, n)| {
                Json::obj([
                    ("status", Json::from(u64::from(*status))),
                    ("count", Json::from(*n)),
                ])
            })
            .collect();
        let attempts: Vec<Json> = self
            .attempts_histogram
            .iter()
            .map(|(attempts, n)| {
                Json::obj([
                    ("attempts", Json::from(u64::from(*attempts))),
                    ("requests", Json::from(*n)),
                ])
            })
            .collect();
        Json::obj([
            ("connections", Json::from(self.connections)),
            ("requests", Json::from(self.requests)),
            ("ok", Json::from(self.ok)),
            ("non_2xx", Json::Arr(non_2xx)),
            ("invalid_bodies", Json::from(self.invalid_bodies)),
            ("io_errors", Json::from(self.io_errors)),
            ("retries", Json::from(self.retries)),
            ("io_retries", Json::from(self.io_retries)),
            ("retries_exhausted", Json::from(self.retries_exhausted)),
            ("attempts_histogram", Json::Arr(attempts)),
            ("elapsed_seconds", Json::from(self.elapsed_seconds)),
            ("throughput_rps", Json::from(self.throughput_rps)),
            (
                "latency_ms",
                Json::obj([
                    ("p50", Json::from(self.p50_ms)),
                    ("p95", Json::from(self.p95_ms)),
                    ("p99", Json::from(self.p99_ms)),
                    ("mean", Json::from(self.mean_ms)),
                    ("max", Json::from(self.max_ms)),
                ]),
            ),
        ])
    }
}

#[derive(Default)]
struct Tally {
    latencies: Vec<Duration>,
    non_2xx: Vec<(u16, usize)>,
    invalid_bodies: usize,
    io_errors: usize,
    retries: u64,
    io_retries: u64,
    retries_exhausted: usize,
    attempts_histogram: Vec<(u32, usize)>,
}

impl Tally {
    fn count_status(&mut self, status: u16) {
        if let Some(entry) = self.non_2xx.iter_mut().find(|(s, _)| *s == status) {
            entry.1 += 1;
        } else {
            self.non_2xx.push((status, 1));
        }
    }

    fn count_attempts(&mut self, attempts: u32) {
        if let Some(entry) = self
            .attempts_histogram
            .iter_mut()
            .find(|(a, _)| *a == attempts)
        {
            entry.1 += 1;
        } else {
            self.attempts_histogram.push((attempts, 1));
        }
        self.retries += u64::from(attempts.saturating_sub(1));
    }

    fn merge(&mut self, other: Tally) {
        self.latencies.extend(other.latencies);
        for (status, n) in other.non_2xx {
            if let Some(entry) = self.non_2xx.iter_mut().find(|(s, _)| *s == status) {
                entry.1 += n;
            } else {
                self.non_2xx.push((status, n));
            }
        }
        for (attempts, n) in other.attempts_histogram {
            if let Some(entry) = self
                .attempts_histogram
                .iter_mut()
                .find(|(a, _)| *a == attempts)
            {
                entry.1 += n;
            } else {
                self.attempts_histogram.push((attempts, n));
            }
        }
        self.invalid_bodies += other.invalid_bodies;
        self.io_errors += other.io_errors;
        self.retries += other.retries;
        self.io_retries += other.io_retries;
        self.retries_exhausted += other.retries_exhausted;
    }
}

/// Sends one request on an open keep-alive connection and reads the
/// response.
///
/// # Errors
///
/// Propagates socket failures.
pub fn request_on(
    stream: &TcpStream,
    reader: &mut BufReader<&TcpStream>,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<Response> {
    let mut out = stream;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: tpi-serve\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    io::Write::write_all(&mut out, head.as_bytes())?;
    io::Write::write_all(&mut out, body.as_bytes())?;
    io::Write::flush(&mut out)?;
    read_response(reader)
}

/// One-shot GET against the server (fresh connection) — used to scrape
/// `/healthz` and `/metrics`.
///
/// # Errors
///
/// Propagates socket failures.
pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> io::Result<Response> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut reader = BufReader::new(&stream);
    request_on(&stream, &mut reader, "GET", path, "")
}

/// One-shot POST against the server (fresh connection).
///
/// # Errors
///
/// Propagates socket failures.
pub fn post(addr: SocketAddr, path: &str, body: &str, timeout: Duration) -> io::Result<Response> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut reader = BufReader::new(&stream);
    request_on(&stream, &mut reader, "POST", path, body)
}

fn valid_grid_body(body: &[u8]) -> bool {
    std::str::from_utf8(body)
        .ok()
        .and_then(|text| parse(text).ok())
        .and_then(|doc| doc.get("cells").map(|cells| cells.as_array().is_some()))
        .unwrap_or(false)
}

/// The `error.code` of a structured error body, if it has one.
fn error_code(body: &[u8]) -> Option<String> {
    let doc = parse(std::str::from_utf8(body).ok()?).ok()?;
    Some(doc.get("error")?.get("code")?.as_str()?.to_owned())
}

/// Whether a response is worth retrying. 503 `overloaded` is explicit
/// backpressure and 503 `upstream_unavailable` is the router briefly
/// without a live owner for a cell (failover or re-probe fixes it); 500
/// `cell_panicked` is transient by contract (panicked cells are never
/// cached, so a retry recomputes). 503 `shutting_down` /
/// `all_replicas_draining` and everything else are terminal.
fn retryable(response: &Response) -> bool {
    match response.status {
        503 => matches!(
            error_code(&response.body).as_deref(),
            Some("overloaded" | "upstream_unavailable")
        ),
        500 => error_code(&response.body).as_deref() == Some("cell_panicked"),
        _ => false,
    }
}

fn retry_after(response: &Response) -> Option<Duration> {
    response
        .header("retry-after")
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_secs)
}

fn connect(config: &LoadgenConfig) -> io::Result<TcpStream> {
    let stream = TcpStream::connect_timeout(&config.addr, config.timeout)?;
    stream.set_read_timeout(Some(config.timeout))?;
    stream.set_write_timeout(Some(config.timeout))?;
    Ok(stream)
}

fn drive_connection(config: &LoadgenConfig, conn_index: usize, mix: &[&str]) -> Tally {
    let mut tally = Tally::default();
    let mut conn = connect(config).ok();
    for i in 0..config.requests_per_connection {
        let body = mix[(conn_index + i) % mix.len()];
        let started = Instant::now();
        let mut attempt = 0u32;
        // The status of the most recent transient failure (None for a
        // socket error), so an exhausted budget reports what it last saw.
        let mut last_transient: Option<u16> = None;
        // Each request gets the policy's budget of retries; a socket
        // error tears the connection down and the next attempt (or the
        // next request) reconnects.
        let terminal: Option<Response> = loop {
            attempt += 1;
            let result = match &conn {
                Some(stream) => {
                    let mut reader = BufReader::new(stream);
                    request_on(stream, &mut reader, "POST", "/v1/experiments", body)
                }
                None => Err(io::Error::new(io::ErrorKind::NotConnected, "not connected")),
            };
            let suggested = match result {
                Ok(response) => {
                    if !retryable(&response) {
                        break Some(response);
                    }
                    last_transient = Some(response.status);
                    retry_after(&response)
                }
                Err(_) => {
                    conn = None;
                    last_transient = None;
                    None
                }
            };
            if attempt > config.retry.budget {
                tally.retries_exhausted += 1;
                break None;
            }
            // This attempt will be retried; a `None` last_transient
            // means it died at the connection level, not on a status.
            if last_transient.is_none() {
                tally.io_retries += 1;
            }
            std::thread::sleep(config.retry.backoff(conn_index, i, attempt, suggested));
            if conn.is_none() {
                conn = connect(config).ok();
            }
        };
        // A `connection: close` response (shutdown, some 4xx paths)
        // means the server side of this socket is gone: drop it now so
        // the next request reconnects instead of burning an attempt on
        // a dead write.
        if let Some(response) = &terminal {
            if response
                .header("connection")
                .is_some_and(|v| v.eq_ignore_ascii_case("close"))
            {
                conn = None;
            }
        }
        tally.count_attempts(attempt);
        match terminal {
            Some(response) if response.status == 200 => {
                if valid_grid_body(&response.body) {
                    tally.latencies.push(started.elapsed());
                } else {
                    tally.invalid_bodies += 1;
                }
            }
            Some(response) => tally.count_status(response.status),
            // Budget exhausted while still transient.
            None => match last_transient {
                Some(status) => tally.count_status(status),
                None => tally.io_errors += 1,
            },
        }
        // The server closes the connection after non-keep-alive
        // responses (e.g. during shutdown); reconnect lazily.
        if conn.is_none() {
            conn = connect(config).ok();
        }
    }
    tally
}

fn percentile(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_secs_f64() * 1e3
}

/// Runs the whole load: `connections` threads, each issuing
/// `requests_per_connection` requests from the template mix.
#[must_use]
pub fn run(config: &LoadgenConfig) -> LoadgenReport {
    let mix = templates();
    let merged = Mutex::new(Tally::default());
    let started = Instant::now();
    std::thread::scope(|scope| {
        for conn_index in 0..config.connections {
            let mix = &mix;
            let merged = &merged;
            scope.spawn(move || {
                let tally = drive_connection(config, conn_index, mix);
                tpi::lock_unpoisoned(merged).merge(tally);
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    let mut tally = tpi::into_inner_unpoisoned(merged);
    tally.attempts_histogram.sort_unstable();
    let mut latencies = tally.latencies;
    latencies.sort_unstable();
    let ok = latencies.len();
    #[allow(clippy::cast_precision_loss)]
    let mean_ms = if ok == 0 {
        0.0
    } else {
        latencies.iter().map(Duration::as_secs_f64).sum::<f64>() / ok as f64 * 1e3
    };
    #[allow(clippy::cast_precision_loss)]
    LoadgenReport {
        connections: config.connections,
        requests: config.connections * config.requests_per_connection,
        ok,
        non_2xx: tally.non_2xx,
        invalid_bodies: tally.invalid_bodies,
        io_errors: tally.io_errors,
        retries: tally.retries,
        io_retries: tally.io_retries,
        retries_exhausted: tally.retries_exhausted,
        attempts_histogram: tally.attempts_histogram,
        elapsed_seconds: elapsed,
        throughput_rps: if elapsed > 0.0 {
            ok as f64 / elapsed
        } else {
            0.0
        },
        p50_ms: percentile(&latencies, 0.50),
        p95_ms: percentile(&latencies, 0.95),
        p99_ms: percentile(&latencies, 0.99),
        mean_ms,
        max_ms: latencies.last().map_or(0.0, |d| d.as_secs_f64() * 1e3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::error_body;

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert!((percentile(&sorted, 0.50) - 50.0).abs() < 1e-9);
        assert!((percentile(&sorted, 0.95) - 95.0).abs() < 1e-9);
        assert!((percentile(&sorted, 0.99) - 99.0).abs() < 1e-9);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn report_renders_as_json() {
        let report = LoadgenReport {
            connections: 2,
            requests: 4,
            ok: 4,
            non_2xx: vec![(503, 1)],
            invalid_bodies: 0,
            io_errors: 0,
            retries: 3,
            io_retries: 1,
            retries_exhausted: 1,
            attempts_histogram: vec![(1, 3), (4, 1)],
            elapsed_seconds: 1.0,
            throughput_rps: 4.0,
            p50_ms: 1.5,
            p95_ms: 2.0,
            p99_ms: 2.5,
            mean_ms: 1.6,
            max_ms: 2.5,
        };
        let doc = report.to_json();
        assert_eq!(doc.get("ok").unwrap().as_u64(), Some(4));
        assert_eq!(doc.get("retries").unwrap().as_u64(), Some(3));
        assert!(doc.render().contains("\"p99\":2.5"));
        assert!(doc.render().contains("\"attempts\":4"));
    }

    #[test]
    fn templates_are_valid_grid_requests() {
        use crate::wire::GridRequest;
        for body in templates() {
            let doc = parse(body).unwrap();
            let grid = GridRequest::parse(&doc).unwrap_or_else(|e| panic!("{body}: {}", e.message));
            assert!(!grid.cells().is_empty());
        }
    }

    #[test]
    fn backoff_is_deterministic_jittered_and_capped() {
        let policy = RetryPolicy {
            budget: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(40),
            seed: 7,
        };
        for attempt in 1..=6 {
            let a = policy.backoff(3, 2, attempt, None);
            let b = policy.backoff(3, 2, attempt, None);
            assert_eq!(a, b, "same inputs, same sleep");
            assert!(a <= policy.max_backoff);
        }
        // Different requests draw different jitter somewhere in the
        // schedule.
        let schedule_a: Vec<_> = (1..=6).map(|k| policy.backoff(0, 0, k, None)).collect();
        let schedule_b: Vec<_> = (1..=6).map(|k| policy.backoff(1, 0, k, None)).collect();
        assert_ne!(schedule_a, schedule_b);
        // Retry-After raises the sleep but never beyond the cap.
        let suggested = policy.backoff(0, 0, 1, Some(Duration::from_secs(30)));
        assert_eq!(suggested, policy.max_backoff);
    }

    #[test]
    fn retryability_follows_the_error_code() {
        let resp = |status: u16, code: &str| Response {
            status,
            headers: vec![("retry-after".to_owned(), "1".to_owned())],
            body: error_body(code, "x").into_bytes(),
        };
        assert!(retryable(&resp(503, "overloaded")));
        assert!(retryable(&resp(500, "cell_panicked")));
        assert!(!retryable(&resp(503, "shutting_down")));
        assert!(!retryable(&resp(400, "bad_json")));
        assert!(!retryable(&resp(200, "ignored")));
        assert_eq!(
            retry_after(&resp(503, "overloaded")),
            Some(Duration::from_secs(1))
        );
    }
}
