//! `tpi-router` — replicating front for a fleet of `tpi-serve` replicas.
//!
//! ```text
//! tpi-router --replica 127.0.0.1:8081 --replica 127.0.0.1:8082
//! tpi-router --addr 0.0.0.0:8080 --replica HOST:PORT --replica HOST:PORT
//! tpi-router --probe-ms 500 --lease-ms 2500 --attempts 4
//! ```
//!
//! The router consistent-hashes grid cells across the replicas, probes
//! `/healthz` on a lease (a missed lease marks the replica draining and
//! reassigns its hash range), and fails a forward over to the next
//! healthy replica on connection errors or retryable 5xx — killing a
//! replica mid-burst costs latency, never failed client requests. See
//! DESIGN.md, "Replication and persistence".
//!
//! On startup the bound address is printed to stdout as
//! `tpi-router listening on http://HOST:PORT`; the process runs until a
//! client posts `/admin/shutdown`, then reports a final stats line to
//! stderr. Replicas are left running — the router fronts the fleet, it
//! does not own it.

use std::io::Write;
use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::time::Duration;
use tpi::cli::{parse_bounded, CliError};
use tpi_serve::router::{Router, RouterConfig};

const USAGE: &str = "usage: tpi-router --replica HOST:PORT [--replica HOST:PORT ...] \
     [--addr HOST:PORT] [--probe-ms N] [--lease-ms N] [--attempts N] \
     [--attempt-timeout-ms N] [--timeout-ms N]";

fn resolve(addr: &str) -> Result<SocketAddr, CliError> {
    addr.to_socket_addrs()
        .ok()
        .and_then(|mut it| it.next())
        .ok_or_else(|| CliError::Field(format!("error[bad_field]: cannot resolve {addr:?}")))
}

fn parse_args(args: &[String]) -> Result<Option<RouterConfig>, CliError> {
    let mut config = RouterConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if matches!(flag.as_str(), "--help" | "-h") {
            return Ok(None);
        }
        let value = it
            .next()
            .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))?;
        match flag.as_str() {
            "--addr" => config.addr = value.clone(),
            "--replica" => config.replicas.push(resolve(value)?),
            "--probe-ms" => {
                config.probe_interval =
                    Duration::from_millis(parse_bounded(flag, value, 10, 60_000)?);
            }
            "--lease-ms" => {
                config.lease = Duration::from_millis(parse_bounded(flag, value, 50, 600_000)?);
            }
            "--attempts" => {
                config.max_attempts =
                    u32::try_from(parse_bounded(flag, value, 1, 64)?).expect("bounded by 64");
            }
            "--attempt-timeout-ms" => {
                config.attempt_timeout =
                    Duration::from_millis(parse_bounded(flag, value, 10, 600_000)?);
            }
            "--timeout-ms" => {
                config.request_timeout =
                    Duration::from_millis(parse_bounded(flag, value, 1, 86_400_000)?);
            }
            other => return Err(CliError::Usage(format!("unknown flag {other}"))),
        }
    }
    if config.replicas.is_empty() {
        return Err(CliError::Usage(
            "at least one --replica HOST:PORT is required".to_owned(),
        ));
    }
    Ok(Some(config))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(Some(config)) => config,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => return e.exit(USAGE),
    };

    let replicas = config.replicas.len();
    let router = match Router::start(config) {
        Ok(router) => router,
        Err(e) => {
            eprintln!("tpi-router: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("tpi-router: fronting {replicas} replicas");
    // The ready line: parsed by supervisors and tests, never hard-coded.
    println!("tpi-router listening on http://{}", router.addr());
    let _ = std::io::stdout().flush();

    router.wait_for_shutdown_request();
    eprintln!("tpi-router: shutdown requested, draining");
    let stats = router.shutdown();
    eprintln!("{stats}");
    ExitCode::SUCCESS
}
