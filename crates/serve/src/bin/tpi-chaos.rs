//! `tpi-chaos` — seeded chaos soak against an in-process `tpi-serve`.
//!
//! ```text
//! tpi-chaos                         # default soak, seed 42
//! tpi-chaos --seed 7 --connections 16 --requests 8
//! tpi-chaos --faults seed=7,worker_panic=0.2,conn_drop=0.1
//! ```
//!
//! Starts a server with every fault site armed, drives it with the
//! retrying load generator plus raw garbage-byte probes, shuts it down,
//! and asserts the failure-isolation invariants (every request
//! terminally answered, no wedged in-flight slots, the cache
//! byte-identical to a fresh serial run outside the deliberately
//! corrupted slots, the server alive after garbage). Exit code 0 iff
//! every invariant held. Runs are reproducible per `--seed`.

use std::process::ExitCode;
use tpi_serve::chaos::{self, ChaosConfig};

fn main() -> ExitCode {
    let mut config = ChaosConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Option<String> {
            let v = it.next().cloned();
            if v.is_none() {
                eprintln!("{name} needs a value");
            }
            v
        };
        match flag.as_str() {
            "--seed" => match value("--seed").and_then(|v| v.parse().ok()) {
                Some(v) => config.seed = v,
                None => return ExitCode::FAILURE,
            },
            "--connections" => match value("--connections").and_then(|v| v.parse().ok()) {
                Some(v) => config.connections = v,
                None => return ExitCode::FAILURE,
            },
            "--requests" => match value("--requests").and_then(|v| v.parse().ok()) {
                Some(v) => config.requests_per_connection = v,
                None => return ExitCode::FAILURE,
            },
            "--workers" => match value("--workers").and_then(|v| v.parse().ok()) {
                Some(v) => config.workers = v,
                None => return ExitCode::FAILURE,
            },
            "--queue" => match value("--queue").and_then(|v| v.parse().ok()) {
                Some(v) => config.queue_cap = v,
                None => return ExitCode::FAILURE,
            },
            "--faults" => match value("--faults") {
                Some(spec) => config.spec = Some(spec),
                None => return ExitCode::FAILURE,
            },
            "--help" | "-h" => {
                println!(
                    "usage: tpi-chaos [--seed N] [--connections N] [--requests M] \
                     [--workers N] [--queue N] [--faults SPEC]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    match chaos::run(&config) {
        Ok(report) => {
            println!("{report}");
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("tpi-chaos: {e}");
            ExitCode::FAILURE
        }
    }
}
