//! `tpi-chaos` — seeded chaos soaks: single server, or a replicated
//! fleet.
//!
//! ```text
//! tpi-chaos                         # default single-server soak, seed 42
//! tpi-chaos --seed 7 --connections 16 --requests 8
//! tpi-chaos --faults seed=7,worker_panic=0.2,conn_drop=0.1
//! tpi-chaos --router                # 3 real replicas, kill one mid-burst
//! tpi-chaos --router --seed 9 --out results/router_bench.json
//! ```
//!
//! The default mode starts a server in-process with every fault site
//! armed, drives it with the retrying load generator plus raw
//! garbage-byte probes, shuts it down, and asserts the
//! failure-isolation invariants (every request terminally answered, no
//! wedged in-flight slots, the cache byte-identical to a fresh serial
//! run outside the deliberately corrupted slots, the server alive after
//! garbage).
//!
//! `--router` spawns real `tpi-serve` child processes with per-replica
//! disk caches behind a `tpi-router`, SIGKILLs the seeded victim
//! mid-burst, and asserts the fleet invariants: zero failed client
//! requests, failover engaged, the dead replica drained from the ring,
//! and the restarted replica byte-identically warm from its disk cache
//! with zero recomputes. Exit code 0 iff every invariant held. Runs are
//! reproducible per `--seed`.

use std::process::ExitCode;
use tpi::cli::{parse_bounded, CliError};
use tpi_serve::chaos::{self, ChaosConfig, RouterChaosConfig};

const USAGE: &str = "usage: tpi-chaos [--seed N] [--connections N] [--requests M] \
     [--workers N] [--queue N] [--faults SPEC] \
     [--router] [--replicas N] [--serve-bin PATH] [--out FILE]";

struct Cli {
    single: ChaosConfig,
    fleet: RouterChaosConfig,
    router_mode: bool,
    out: Option<std::path::PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Option<Cli>, CliError> {
    let mut cli = Cli {
        single: ChaosConfig::default(),
        fleet: RouterChaosConfig::default(),
        router_mode: false,
        out: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--help" | "-h" => return Ok(None),
            "--router" => {
                cli.router_mode = true;
                continue;
            }
            _ => {}
        }
        let value = it
            .next()
            .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))?;
        match flag.as_str() {
            "--seed" => {
                let seed = value
                    .parse()
                    .map_err(|_| CliError::Usage(format!("{flag} needs an integer")))?;
                cli.single.seed = seed;
                cli.fleet.seed = seed;
            }
            "--connections" => {
                let n = parse_bounded(flag, value, 1, 4096)? as usize;
                cli.single.connections = n;
                cli.fleet.connections = n;
            }
            "--requests" => {
                let n = parse_bounded(flag, value, 1, 1 << 20)? as usize;
                cli.single.requests_per_connection = n;
                cli.fleet.requests_per_connection = n;
            }
            "--workers" => {
                let n = parse_bounded(flag, value, 1, 1024)? as usize;
                cli.single.workers = n;
                cli.fleet.workers = n;
            }
            "--queue" => {
                cli.single.queue_cap = parse_bounded(flag, value, 1, 1 << 20)? as usize;
            }
            "--replicas" => {
                cli.fleet.replicas = parse_bounded(flag, value, 1, 64)? as usize;
            }
            "--serve-bin" => cli.fleet.serve_bin = Some(std::path::PathBuf::from(value)),
            "--faults" => {
                cli.single.spec = Some(value.clone());
                cli.fleet.spec = Some(value.clone());
            }
            "--out" => cli.out = Some(std::path::PathBuf::from(value)),
            other => return Err(CliError::Usage(format!("unknown flag {other}"))),
        }
    }
    Ok(Some(cli))
}

fn write_out(path: &std::path::Path, rendered: &str) -> bool {
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(path, format!("{rendered}\n")) {
        eprintln!("cannot write {}: {e}", path.display());
        return false;
    }
    true
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(Some(cli)) => cli,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => return e.exit(USAGE),
    };

    if cli.router_mode {
        return match chaos::run_router(&cli.fleet) {
            Ok(report) => {
                println!("{report}");
                if let Some(path) = &cli.out {
                    if !write_out(path, &report.to_json().render()) {
                        return ExitCode::FAILURE;
                    }
                }
                if report.passed() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("tpi-chaos: {e}");
                ExitCode::FAILURE
            }
        };
    }

    match chaos::run(&cli.single) {
        Ok(report) => {
            println!("{report}");
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("tpi-chaos: {e}");
            ExitCode::FAILURE
        }
    }
}
