//! `tpi-loadgen` — concurrent load against a running `tpi-serve`.
//!
//! ```text
//! tpi-loadgen --addr 127.0.0.1:8080                  # 64 conns x 8 reqs
//! tpi-loadgen --addr HOST:PORT --connections 128 --requests 16
//! tpi-loadgen --addr HOST:PORT --out results/serve_bench.json
//! tpi-loadgen --addr HOST:PORT --expect-cache-hits   # CI smoke assertion
//! tpi-loadgen --addr HOST:PORT --retries 5 --retry-seed 7
//! ```
//!
//! Transient failures (socket errors, 503 `overloaded`, 500
//! `cell_panicked`) are retried with seeded full-jitter exponential
//! backoff under a per-request budget (`--retries`, default 3); the
//! report's `retries`, `retries_exhausted`, and `attempts_histogram`
//! fields say how hard the run had to work.
//!
//! Drives N concurrent keep-alive connections of mixed grid requests and
//! prints a JSON report (throughput, p50/p95/p99 latency) to stdout;
//! `--out` additionally writes it to a file. With `--expect-cache-hits`
//! the run fails unless `/metrics` shows the duplicate requests were
//! deduplicated (single-flight joins + result-cache hits > 0) — the mix
//! repeats bodies across connections, so zero hits means the serving
//! layer's caching is broken. Any non-2xx response, invalid body, or
//! socket error also fails the run.

use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::time::Duration;
use tpi_serve::loadgen::{self, LoadgenConfig, RetryPolicy};

fn resolve(addr: &str) -> Option<SocketAddr> {
    addr.to_socket_addrs().ok()?.next()
}

fn metric_value(metrics_text: &str, name: &str) -> Option<u64> {
    metrics_text
        .lines()
        .find(|line| line.starts_with(name) && line[name.len()..].starts_with(' '))
        .and_then(|line| line.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<String> = None;
    let mut connections = 64usize;
    let mut requests = 8usize;
    let mut out: Option<std::path::PathBuf> = None;
    let mut expect_cache_hits = false;
    let mut retry = RetryPolicy::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => addr = it.next().cloned(),
            "--connections" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => connections = v,
                None => return usage(),
            },
            "--requests" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => requests = v,
                None => return usage(),
            },
            "--retries" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => retry.budget = v,
                None => return usage(),
            },
            "--retry-base-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => retry.base_backoff = Duration::from_millis(v),
                None => return usage(),
            },
            "--retry-max-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => retry.max_backoff = Duration::from_millis(v),
                None => return usage(),
            },
            "--retry-seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => retry.seed = v,
                None => return usage(),
            },
            "--out" => out = it.next().map(std::path::PathBuf::from),
            "--expect-cache-hits" => expect_cache_hits = true,
            "--help" | "-h" => return usage(),
            other => {
                eprintln!("unknown flag {other}");
                return usage();
            }
        }
    }
    let Some(addr) = addr.as_deref().and_then(resolve) else {
        eprintln!("--addr HOST:PORT is required");
        return usage();
    };

    let mut config = LoadgenConfig::new(addr);
    config.connections = connections.max(1);
    config.requests_per_connection = requests.max(1);
    config.retry = retry;
    let report = loadgen::run(&config);
    let rendered = report.to_json().render();
    println!("{rendered}");
    if let Some(path) = out {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&path, format!("{rendered}\n")) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    let clean = report.ok == report.requests;
    if !clean {
        eprintln!(
            "load run was not clean: {} ok of {} ({} non-2xx kinds, {} invalid bodies, {} io errors)",
            report.ok,
            report.requests,
            report.non_2xx.len(),
            report.invalid_bodies,
            report.io_errors
        );
    }

    if expect_cache_hits {
        let metrics = match loadgen::get(addr, "/metrics", Duration::from_secs(10)) {
            Ok(response) if response.status == 200 => {
                String::from_utf8_lossy(&response.body).into_owned()
            }
            Ok(response) => {
                eprintln!("/metrics returned {}", response.status);
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("/metrics scrape failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let cached = metric_value(&metrics, "tpi_serve_cells_cached_total").unwrap_or(0);
        let joined = metric_value(&metrics, "tpi_serve_cells_joined_total").unwrap_or(0);
        let computed = metric_value(&metrics, "tpi_serve_cells_computed_total").unwrap_or(0);
        eprintln!(
            "dedup check: {computed} cells computed, {cached} cache hits, {joined} single-flight joins"
        );
        if cached + joined == 0 {
            eprintln!("expected cache hits across duplicate requests, found none");
            return ExitCode::FAILURE;
        }
    }

    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: tpi-loadgen --addr HOST:PORT [--connections N] [--requests M] \
         [--retries N] [--retry-base-ms N] [--retry-max-ms N] [--retry-seed N] \
         [--out FILE] [--expect-cache-hits]"
    );
    ExitCode::FAILURE
}
