//! `tpi-loadgen` — concurrent load against a running `tpi-serve` (or
//! `tpi-router`).
//!
//! ```text
//! tpi-loadgen --addr 127.0.0.1:8080                  # 64 conns x 8 reqs
//! tpi-loadgen --addr HOST:PORT --connections 128 --requests 16
//! tpi-loadgen --addr HOST:PORT --out results/serve_bench.json
//! tpi-loadgen --addr HOST:PORT --expect-cache-hits   # CI smoke assertion
//! tpi-loadgen --addr HOST:PORT --retries 5 --retry-seed 7
//! ```
//!
//! Transient failures (connection-level errors, 503 `overloaded` /
//! `upstream_unavailable`, 500 `cell_panicked`) are retried with seeded
//! full-jitter exponential backoff under a per-request budget
//! (`--retries`, default 3); the report's `retries`, `io_retries`,
//! `retries_exhausted`, and `attempts_histogram` fields say how hard the
//! run had to work — `io_retries` isolates the attempts that died on the
//! socket (refused, reset mid-body) from HTTP-level backpressure.
//!
//! Drives N concurrent keep-alive connections of mixed grid requests and
//! prints a JSON report (throughput, p50/p95/p99 latency) to stdout;
//! `--out` additionally writes it to a file. With `--expect-cache-hits`
//! the run fails unless `/metrics` shows the duplicate requests were
//! deduplicated (single-flight joins + result-cache hits > 0) — the mix
//! repeats bodies across connections, so zero hits means the serving
//! layer's caching is broken. Any non-2xx response, invalid body, or
//! socket error also fails the run.

use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::time::Duration;
use tpi::cli::{parse_bounded, CliError};
use tpi_serve::loadgen::{self, LoadgenConfig, RetryPolicy};

const USAGE: &str = "usage: tpi-loadgen --addr HOST:PORT [--connections N] [--requests M] \
     [--retries N] [--retry-base-ms N] [--retry-max-ms N] [--retry-seed N] \
     [--out FILE] [--expect-cache-hits]";

fn metric_value(metrics_text: &str, name: &str) -> Option<u64> {
    metrics_text
        .lines()
        .find(|line| line.starts_with(name) && line[name.len()..].starts_with(' '))
        .and_then(|line| line.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

struct Cli {
    config: LoadgenConfig,
    out: Option<std::path::PathBuf>,
    expect_cache_hits: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Cli>, CliError> {
    let mut addr: Option<String> = None;
    let mut connections = 64u64;
    let mut requests = 8u64;
    let mut out: Option<std::path::PathBuf> = None;
    let mut expect_cache_hits = false;
    let mut retry = RetryPolicy::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--help" | "-h" => return Ok(None),
            "--expect-cache-hits" => {
                expect_cache_hits = true;
                continue;
            }
            _ => {}
        }
        let value = it
            .next()
            .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))?;
        match flag.as_str() {
            "--addr" => addr = Some(value.clone()),
            "--connections" => connections = parse_bounded(flag, value, 1, 4096)?,
            "--requests" => requests = parse_bounded(flag, value, 1, 1 << 20)?,
            "--retries" => {
                retry.budget =
                    u32::try_from(parse_bounded(flag, value, 0, 1000)?).expect("bounded");
            }
            "--retry-base-ms" => {
                retry.base_backoff = Duration::from_millis(parse_bounded(flag, value, 1, 60_000)?);
            }
            "--retry-max-ms" => {
                retry.max_backoff = Duration::from_millis(parse_bounded(flag, value, 1, 600_000)?);
            }
            "--retry-seed" => {
                retry.seed = value
                    .parse()
                    .map_err(|_| CliError::Usage(format!("{flag} needs an integer")))?;
            }
            "--out" => out = Some(std::path::PathBuf::from(value)),
            other => return Err(CliError::Usage(format!("unknown flag {other}"))),
        }
    }
    let addr: SocketAddr = addr
        .ok_or_else(|| CliError::Usage("--addr HOST:PORT is required".to_owned()))?
        .to_socket_addrs()
        .ok()
        .and_then(|mut it| it.next())
        .ok_or_else(|| CliError::Field("error[bad_field]: cannot resolve --addr".to_owned()))?;
    let mut config = LoadgenConfig::new(addr);
    config.connections = connections as usize;
    config.requests_per_connection = requests as usize;
    config.retry = retry;
    Ok(Some(Cli {
        config,
        out,
        expect_cache_hits,
    }))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(Some(cli)) => cli,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => return e.exit(USAGE),
    };
    let addr = cli.config.addr;
    let report = loadgen::run(&cli.config);
    let rendered = report.to_json().render();
    println!("{rendered}");
    if let Some(path) = cli.out {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&path, format!("{rendered}\n")) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    let clean = report.ok == report.requests;
    if !clean {
        eprintln!(
            "load run was not clean: {} ok of {} ({} non-2xx kinds, {} invalid bodies, {} io errors)",
            report.ok,
            report.requests,
            report.non_2xx.len(),
            report.invalid_bodies,
            report.io_errors
        );
    }

    if cli.expect_cache_hits {
        let metrics = match loadgen::get(addr, "/metrics", Duration::from_secs(10)) {
            Ok(response) if response.status == 200 => {
                String::from_utf8_lossy(&response.body).into_owned()
            }
            Ok(response) => {
                eprintln!("/metrics returned {}", response.status);
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("/metrics scrape failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let cached = metric_value(&metrics, "tpi_serve_cells_cached_total").unwrap_or(0);
        let joined = metric_value(&metrics, "tpi_serve_cells_joined_total").unwrap_or(0);
        let computed = metric_value(&metrics, "tpi_serve_cells_computed_total").unwrap_or(0);
        eprintln!(
            "dedup check: {computed} cells computed, {cached} cache hits, {joined} single-flight joins"
        );
        if cached + joined == 0 {
            eprintln!("expected cache hits across duplicate requests, found none");
            return ExitCode::FAILURE;
        }
    }

    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
