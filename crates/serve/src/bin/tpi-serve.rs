//! `tpi-serve` — the experiment service.
//!
//! ```text
//! tpi-serve                        # bind 127.0.0.1:0 (ephemeral port)
//! tpi-serve --addr 0.0.0.0:8080    # explicit bind address
//! tpi-serve --workers 8 --queue 128 --timeout-ms 30000
//! tpi-serve --faults seed=42,worker_panic=0.05,conn_drop=0.02
//! ```
//!
//! On startup the bound address is printed to stdout as
//! `tpi-serve listening on http://HOST:PORT` — when binding port 0 this
//! line is the only way to learn the real port, so supervisors (and the
//! CI smoke job) parse it instead of hard-coding ports. The process runs
//! until a client posts `/admin/shutdown`, then drains in-flight work
//! and prints a final stats line to stderr.

use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use tpi_serve::server::{ServeConfig, Server};
use tpi_serve::FaultPlan;

fn main() -> ExitCode {
    let mut config = ServeConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Option<String> {
            let v = it.next().cloned();
            if v.is_none() {
                eprintln!("{name} needs a value");
            }
            v
        };
        match flag.as_str() {
            "--addr" => match value("--addr") {
                Some(v) => config.addr = v,
                None => return ExitCode::FAILURE,
            },
            "--workers" => match value("--workers").and_then(|v| v.parse().ok()) {
                Some(v) => config.workers = v,
                None => return ExitCode::FAILURE,
            },
            "--queue" => match value("--queue").and_then(|v| v.parse().ok()) {
                Some(v) => config.queue_cap = v,
                None => return ExitCode::FAILURE,
            },
            "--timeout-ms" => match value("--timeout-ms").and_then(|v| v.parse().ok()) {
                Some(v) => config.request_timeout = Duration::from_millis(v),
                None => return ExitCode::FAILURE,
            },
            "--slow-cell-ms" => match value("--slow-cell-ms").and_then(|v| v.parse().ok()) {
                // Debug/test hook: artificial per-cell latency.
                Some(v) => config.cell_delay = Duration::from_millis(v),
                None => return ExitCode::FAILURE,
            },
            "--faults" => match value("--faults") {
                // Deterministic fault injection (see DESIGN.md, "Failure
                // model"). Off — and zero-cost — unless this flag is set.
                Some(spec) => match FaultPlan::parse(&spec) {
                    Ok(plan) => config.fault = Some(Arc::new(plan)),
                    Err(e) => {
                        eprintln!("bad --faults spec: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => return ExitCode::FAILURE,
            },
            "--help" | "-h" => {
                println!(
                    "usage: tpi-serve [--addr HOST:PORT] [--workers N] [--queue N] \
                     [--timeout-ms N] [--slow-cell-ms N] [--faults SPEC]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("tpi-serve: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The ready line: parsed by supervisors and tests, never hard-coded.
    println!("tpi-serve listening on http://{}", server.addr());
    let _ = std::io::stdout().flush();

    server.wait_for_shutdown_request();
    eprintln!("tpi-serve: shutdown requested, draining");
    let stats = server.shutdown();
    eprintln!("{stats}");
    ExitCode::SUCCESS
}
