//! `tpi-serve` — the experiment service.
//!
//! ```text
//! tpi-serve                        # bind 127.0.0.1:0 (ephemeral port)
//! tpi-serve --addr 0.0.0.0:8080    # explicit bind address
//! tpi-serve --workers 8 --queue 128 --timeout-ms 30000
//! tpi-serve --cache-dir /var/tmp/tpi-cache --memory-cells 512
//! tpi-serve --faults seed=42,worker_panic=0.05,conn_drop=0.02
//! ```
//!
//! On startup the bound address is printed to stdout as
//! `tpi-serve listening on http://HOST:PORT` — when binding port 0 this
//! line is the only way to learn the real port, so supervisors (and the
//! CI smoke job) parse it instead of hard-coding ports. The process runs
//! until a client posts `/admin/shutdown`, then drains in-flight work
//! and prints a final stats line to stderr.
//!
//! With `--cache-dir` every computed cell is also persisted to a
//! crash-safe on-disk store; a restart on the same directory recovers
//! (and re-verifies) the surviving records, so the service comes back
//! warm. The startup recovery scan is reported to stderr.

use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use tpi::cli::{parse_bounded, CliError};
use tpi_serve::server::{ServeConfig, Server};
use tpi_serve::FaultPlan;

const USAGE: &str = "usage: tpi-serve [--addr HOST:PORT] [--workers N] [--queue N] \
     [--timeout-ms N] [--slow-cell-ms N] [--cache-dir DIR] [--memory-cells N] \
     [--faults SPEC]";

fn parse_args(args: &[String]) -> Result<Option<ServeConfig>, CliError> {
    let mut config = ServeConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if matches!(flag.as_str(), "--help" | "-h") {
            return Ok(None);
        }
        let value = it
            .next()
            .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))?;
        match flag.as_str() {
            "--addr" => config.addr = value.clone(),
            "--workers" => {
                config.workers = parse_bounded(flag, value, 1, 1024)? as usize;
            }
            "--queue" => {
                config.queue_cap = parse_bounded(flag, value, 1, 1 << 20)? as usize;
            }
            "--timeout-ms" => {
                config.request_timeout =
                    Duration::from_millis(parse_bounded(flag, value, 1, 86_400_000)?);
            }
            "--slow-cell-ms" => {
                // Debug/test hook: artificial per-cell latency.
                config.cell_delay = Duration::from_millis(parse_bounded(flag, value, 0, 60_000)?);
            }
            "--cache-dir" => {
                // Crash-safe persistent result cache (see DESIGN.md,
                // "Replication and persistence").
                config.cache_dir = Some(std::path::PathBuf::from(value));
            }
            "--memory-cells" => {
                config.memory_cells = parse_bounded(flag, value, 1, 1 << 24)? as usize;
            }
            "--faults" => {
                // Deterministic fault injection (see DESIGN.md, "Failure
                // model"). Off — and zero-cost — unless this flag is set.
                let plan = FaultPlan::parse(value)
                    .map_err(|e| CliError::Field(format!("error[bad_field]: --faults: {e}")))?;
                config.fault = Some(Arc::new(plan));
            }
            other => return Err(CliError::Usage(format!("unknown flag {other}"))),
        }
    }
    Ok(Some(config))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(Some(config)) => config,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => return e.exit(USAGE),
    };

    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("tpi-serve: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(report) = server.recovery_report() {
        eprintln!(
            "tpi-serve: disk cache recovered: {} scanned, {} valid, {} quarantined, {} tmp removed",
            report.scanned, report.valid, report.quarantined, report.tmp_removed
        );
    }
    // The ready line: parsed by supervisors and tests, never hard-coded.
    println!("tpi-serve listening on http://{}", server.addr());
    let _ = std::io::stdout().flush();

    server.wait_for_shutdown_request();
    eprintln!("tpi-serve: shutdown requested, draining");
    let stats = server.shutdown();
    eprintln!("{stats}");
    ExitCode::SUCCESS
}
