//! The execution side of the service: a single-flight cell store (result
//! cache + in-flight deduplication) and a bounded worker pool.
//!
//! Identity is a [`CellKey`]. The first request to need a cell becomes
//! its *leader* and enqueues one job; every concurrent request for the
//! same cell *joins* the leader's flight slot and is woken when the one
//! computation finishes; later requests hit the completed-result cache.
//! The queue between requests and workers is bounded — when a request's
//! jobs don't fit, the whole request is refused (backpressure, a 503 at
//! the HTTP layer) rather than queued without limit.

use crate::metrics::Metrics;
use crate::wire::CellKey;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use tpi::{ExperimentResult, Runner};

/// Why a cell failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellError {
    /// The service refused the work (queue full at submission time).
    /// Waiters that joined the flight report 503, same as the leader.
    Overloaded,
    /// The experiment itself failed (e.g. the program races under its
    /// schedule) — a legitimate per-cell result, not a server fault.
    Failed(String),
}

/// What one cell computation produced.
pub type CellOutcome = Result<ExperimentResult, CellError>;

/// A slot that one leader fills and any number of waiters block on.
#[derive(Debug)]
pub struct FlightSlot {
    state: Mutex<Option<Arc<CellOutcome>>>,
    cond: Condvar,
}

impl FlightSlot {
    fn new() -> Arc<FlightSlot> {
        Arc::new(FlightSlot {
            state: Mutex::new(None),
            cond: Condvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, Option<Arc<CellOutcome>>> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn complete(&self, outcome: Arc<CellOutcome>) {
        *self.lock() = Some(outcome);
        self.cond.notify_all();
    }

    /// Blocks until the slot is filled or `deadline` passes.
    #[must_use]
    pub fn wait_until(&self, deadline: Instant) -> Option<Arc<CellOutcome>> {
        let mut state = self.lock();
        loop {
            if let Some(outcome) = state.as_ref() {
                return Some(Arc::clone(outcome));
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, timeout) = self
                .cond
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = next;
            if timeout.timed_out() && state.is_none() {
                return None;
            }
        }
    }
}

/// How a request obtains one cell.
pub enum CellPlan {
    /// Already computed: the outcome is immediately available.
    Cached(Arc<CellOutcome>),
    /// An identical cell is in flight: wait on its slot.
    Joined(Arc<FlightSlot>),
    /// This request leads the cell: it must enqueue the returned job.
    Lead(CellJob),
}

/// One unit of pooled work.
#[derive(Debug)]
pub struct CellJob {
    /// The cell to compute.
    pub key: CellKey,
    /// The slot every waiter of this cell blocks on.
    pub slot: Arc<FlightSlot>,
}

/// Completed results plus the in-flight table. Lock order is always
/// `inflight` before `done`; both are leaf locks held only for map
/// operations.
#[derive(Default)]
pub struct CellStore {
    inflight: Mutex<HashMap<CellKey, Arc<FlightSlot>>>,
    done: Mutex<HashMap<CellKey, Arc<CellOutcome>>>,
}

impl CellStore {
    fn inflight(&self) -> MutexGuard<'_, HashMap<CellKey, Arc<FlightSlot>>> {
        self.inflight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn done(&self) -> MutexGuard<'_, HashMap<CellKey, Arc<CellOutcome>>> {
        self.done
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Decides how to obtain `key`: cached, joined, or led. Registering
    /// the leader is atomic with the lookups, so two concurrent requests
    /// can never both lead the same cell.
    #[must_use]
    pub fn plan(&self, key: CellKey) -> CellPlan {
        let mut inflight = self.inflight();
        if let Some(outcome) = self.done().get(&key) {
            return CellPlan::Cached(Arc::clone(outcome));
        }
        if let Some(slot) = inflight.get(&key) {
            return CellPlan::Joined(Arc::clone(slot));
        }
        let slot = FlightSlot::new();
        inflight.insert(key, Arc::clone(&slot));
        CellPlan::Lead(CellJob { key, slot })
    }

    /// Publishes a finished cell: future requests hit the result cache,
    /// current waiters are woken. Experiment failures are cached too —
    /// they are deterministic results of the cell's inputs. `Overloaded`
    /// is *not* cached (it describes a transient server state), so the
    /// next request retries the cell.
    pub fn finish(&self, job: &CellJob, outcome: CellOutcome) {
        let outcome = Arc::new(outcome);
        {
            let mut inflight = self.inflight();
            if !matches!(outcome.as_ref(), Err(CellError::Overloaded)) {
                self.done().insert(job.key, Arc::clone(&outcome));
            }
            inflight.remove(&job.key);
        }
        job.slot.complete(outcome);
    }

    /// Number of completed cells held by the result cache.
    #[must_use]
    pub fn results_cached(&self) -> usize {
        self.done().len()
    }
}

struct PoolShared {
    queue: Mutex<VecDeque<CellJob>>,
    cond: Condvar,
    cap: usize,
    busy: AtomicUsize,
    stop: AtomicBool,
    runner: Arc<Runner>,
    store: Arc<CellStore>,
    metrics: Arc<Metrics>,
    /// Test hook: artificial per-cell latency, so backpressure and
    /// timeout paths can be exercised deterministically.
    cell_delay: Duration,
}

/// A fixed set of worker threads fed by one bounded queue.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    workers: usize,
}

impl WorkerPool {
    /// Spawns `workers` threads over a queue of capacity `queue_cap`.
    #[must_use]
    pub fn start(
        workers: usize,
        queue_cap: usize,
        runner: Arc<Runner>,
        store: Arc<CellStore>,
        metrics: Arc<Metrics>,
        cell_delay: Duration,
    ) -> WorkerPool {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            cap: queue_cap.max(1),
            busy: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            runner,
            store,
            metrics,
            cell_delay,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tpi-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles: Mutex::new(handles),
            workers,
        }
    }

    /// Enqueues a request's jobs, all or nothing. If the queue cannot
    /// take every job, nothing is enqueued and the jobs come back in
    /// `Err` — the caller must fail them (see [`CellStore::finish`] with
    /// [`CellError::Overloaded`]) so joined waiters are released too.
    ///
    /// # Errors
    ///
    /// Returns the jobs unchanged when the queue lacks room or the pool
    /// is shutting down.
    pub fn submit_batch(&self, jobs: Vec<CellJob>) -> Result<(), Vec<CellJob>> {
        if jobs.is_empty() {
            return Ok(());
        }
        let mut queue = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if self.shared.stop.load(Ordering::Acquire) || queue.len() + jobs.len() > self.shared.cap {
            return Err(jobs);
        }
        queue.extend(jobs);
        drop(queue);
        self.shared.cond.notify_all();
        Ok(())
    }

    /// Cells waiting in the queue right now.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Workers currently computing a cell.
    #[must_use]
    pub fn busy(&self) -> usize {
        self.shared.busy.load(Ordering::Relaxed)
    }

    /// Size of the pool.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Queue capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shared.cap
    }

    /// Stops the pool: no new submissions are accepted, already-queued
    /// jobs are drained (their waiters still get results), then the
    /// workers exit and are joined.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.cond.notify_all();
        let handles: Vec<_> = self
            .handles
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                queue = shared
                    .cond
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        shared.busy.fetch_add(1, Ordering::Relaxed);
        if !shared.cell_delay.is_zero() {
            std::thread::sleep(shared.cell_delay);
        }
        let outcome = compute(&shared.runner, &job.key);
        shared
            .metrics
            .cells_computed
            .fetch_add(1, Ordering::Relaxed);
        shared.store.finish(&job, outcome);
        shared.busy.fetch_sub(1, Ordering::Relaxed);
    }
}

fn compute(runner: &Runner, key: &CellKey) -> CellOutcome {
    let config = key
        .config()
        .map_err(|e| CellError::Failed(format!("invalid machine: {e}")))?;
    runner
        .run_kernel(key.kernel, key.scale, &config)
        .map_err(|e| CellError::Failed(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_compiler::OptLevel;
    use tpi_proto::SchemeKind;
    use tpi_workloads::{Kernel, Scale};

    fn key(seed: u64) -> CellKey {
        CellKey {
            kernel: Kernel::Flo52,
            scale: Scale::Test,
            scheme: SchemeKind::Tpi,
            opt_level: OptLevel::Full,
            procs: 16,
            line_words: 4,
            cache_bytes: 64 * 1024,
            tag_bits: 8,
            seed,
        }
    }

    fn pool(workers: usize, cap: usize, delay: Duration) -> (WorkerPool, Arc<CellStore>) {
        let store = Arc::new(CellStore::default());
        let pool = WorkerPool::start(
            workers,
            cap,
            Arc::new(Runner::serial()),
            Arc::clone(&store),
            Arc::new(Metrics::default()),
            delay,
        );
        (pool, store)
    }

    #[test]
    fn computes_and_caches_a_cell() {
        let (pool, store) = pool(1, 4, Duration::ZERO);
        let CellPlan::Lead(job) = store.plan(key(1)) else {
            panic!("fresh cell must be led");
        };
        let slot = Arc::clone(&job.slot);
        pool.submit_batch(vec![job]).unwrap();
        let outcome = slot
            .wait_until(Instant::now() + Duration::from_secs(30))
            .expect("cell completes");
        assert!(outcome.is_ok());
        // Second plan hits the result cache.
        assert!(matches!(store.plan(key(1)), CellPlan::Cached(_)));
        assert_eq!(store.results_cached(), 1);
        pool.shutdown();
    }

    #[test]
    fn duplicate_inflight_cells_join_one_flight() {
        // A long artificial delay holds the cell in flight while the
        // second plan is made.
        let (pool, store) = pool(1, 4, Duration::from_millis(200));
        let CellPlan::Lead(job) = store.plan(key(2)) else {
            panic!("fresh cell must be led");
        };
        let lead_slot = Arc::clone(&job.slot);
        pool.submit_batch(vec![job]).unwrap();
        let CellPlan::Joined(join_slot) = store.plan(key(2)) else {
            panic!("in-flight cell must be joined");
        };
        assert!(Arc::ptr_eq(&lead_slot, &join_slot));
        let a = lead_slot
            .wait_until(Instant::now() + Duration::from_secs(30))
            .unwrap();
        let b = join_slot
            .wait_until(Instant::now() + Duration::from_secs(30))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "both waiters see the same outcome");
        pool.shutdown();
    }

    #[test]
    fn queue_overflow_is_all_or_nothing() {
        let (pool, store) = pool(1, 2, Duration::from_millis(300));
        // Occupy the worker and fill the queue.
        let mut jobs = Vec::new();
        for seed in 10..13 {
            match store.plan(key(seed)) {
                CellPlan::Lead(job) => jobs.push(job),
                _ => panic!("fresh cells must be led"),
            }
        }
        // 3 jobs > capacity 2: refused as a unit, jobs returned.
        let back = pool.submit_batch(jobs).unwrap_err();
        assert_eq!(back.len(), 3);
        assert_eq!(pool.queue_depth(), 0);
        // Failing them with Overloaded releases any joined waiter.
        for job in &back {
            store.finish(job, Err(CellError::Overloaded));
        }
        let outcome = back[0]
            .slot
            .wait_until(Instant::now() + Duration::from_millis(10))
            .unwrap();
        assert!(matches!(outcome.as_ref(), Err(CellError::Overloaded)));
        // Overloaded is transient: not cached, the cell can be retried.
        assert!(matches!(store.plan(key(10)), CellPlan::Lead(_)));
        pool.shutdown();
    }

    #[test]
    fn wait_until_respects_the_deadline() {
        let slot = FlightSlot::new();
        let t0 = Instant::now();
        assert!(slot
            .wait_until(Instant::now() + Duration::from_millis(30))
            .is_none());
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let (pool, store) = pool(2, 8, Duration::from_millis(20));
        let mut slots = Vec::new();
        let mut jobs = Vec::new();
        for seed in 20..26 {
            let CellPlan::Lead(job) = store.plan(key(seed)) else {
                panic!("fresh cells must be led");
            };
            slots.push(Arc::clone(&job.slot));
            jobs.push(job);
        }
        pool.submit_batch(jobs).unwrap();
        pool.shutdown();
        // Every queued job completed before the workers exited.
        for slot in slots {
            assert!(slot
                .wait_until(Instant::now() + Duration::from_millis(1))
                .is_some());
        }
        assert_eq!(store.results_cached(), 6);
    }
}
