//! The execution side of the service: a single-flight cell store (result
//! cache + in-flight deduplication) and a bounded, supervised worker
//! pool.
//!
//! Identity is a [`CellKey`]. The first request to need a cell becomes
//! its *leader* and enqueues one job; every concurrent request for the
//! same cell *joins* the leader's flight slot and is woken when the one
//! computation finishes; later requests hit the completed-result cache.
//! The queue between requests and workers is bounded — when a request's
//! jobs don't fit, the whole request is refused (backpressure, a 503 at
//! the HTTP layer) rather than queued without limit.
//!
//! Failure isolation, in layers:
//!
//! 1. every cell computation runs under [`tpi::catch_cell_panic`], so a
//!    panicking cell resolves its own flight slot with a structured
//!    [`CellError::Panicked`] — waiters get a 500, nothing is cached,
//!    and the next identical request recomputes;
//! 2. a drop guard re-arms that promise for the *unguarded* remainder of
//!    the job (publishing, metrics): if the worker dies anywhere between
//!    claiming a job and finishing it, the guard resolves the slot
//!    during unwind so no waiter can wedge;
//! 3. worker threads are supervised — a worker that dies for any reason
//!    respawns itself (counted in `tpi_worker_restarts_total`) unless
//!    the pool is stopping;
//! 4. shutdown terminally answers whatever is left: after the workers
//!    drain and exit, any job still queued is failed with
//!    [`CellError::ShuttingDown`] so its waiters resolve before the
//!    final stats line.

use crate::disk::DiskCache;
use crate::fault::{FaultPlan, FaultSite, INJECTED_PANIC_PREFIX};
use crate::json::Json;
use crate::metrics::Metrics;
use crate::wire::{render_cell, CellKey};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use tpi::{catch_cell_panic, lock_unpoisoned, Runner};

/// Why a cell failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellError {
    /// The service refused the work (queue full at submission time).
    /// Waiters that joined the flight report 503, same as the leader.
    Overloaded,
    /// The experiment itself failed (e.g. the program races under its
    /// schedule) — a legitimate per-cell result, not a server fault.
    Failed(String),
    /// The cell's computation panicked. Contained per cell: only this
    /// cell's waiters see it (a 500 at the HTTP layer), the outcome is
    /// never cached, and the next identical request recomputes.
    Panicked(String),
    /// The pool shut down before the cell could run (a 503
    /// `shutting_down` at the HTTP layer). Never cached.
    ShuttingDown,
}

/// A successful cell value: either computed in this process, or
/// recovered verbatim from the disk cache. Both render to the same
/// response bytes — [`CellValue::rendered`] is the byte-identity
/// contract the chaos harness and the persistence tests check.
#[derive(Debug)]
pub enum CellValue {
    /// Computed by a worker in this process (boxed: an
    /// [`ExperimentResult`] dwarfs the recovered variant).
    Computed(Box<ExperimentResult>),
    /// Recovered from a verified disk-cache record: the parsed form of
    /// the exact JSON this cell was served as before the restart.
    Recovered(Json),
}

impl CellValue {
    /// The cell's response JSON node.
    #[must_use]
    pub fn to_json(&self, key: &CellKey) -> Json {
        match self {
            CellValue::Computed(result) => render_cell(key, result),
            CellValue::Recovered(json) => json.clone(),
        }
    }

    /// The cell's response bytes. Rendering is deterministic, so a
    /// recovered cell reproduces its pre-restart bytes exactly.
    #[must_use]
    pub fn rendered(&self, key: &CellKey) -> String {
        self.to_json(key).render()
    }
}

/// What one cell computation produced.
pub type CellOutcome = Result<CellValue, CellError>;

use tpi::ExperimentResult;

/// A slot that one leader fills and any number of waiters block on.
#[derive(Debug)]
pub struct FlightSlot {
    state: Mutex<Option<Arc<CellOutcome>>>,
    cond: Condvar,
}

impl FlightSlot {
    fn new() -> Arc<FlightSlot> {
        Arc::new(FlightSlot {
            state: Mutex::new(None),
            cond: Condvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, Option<Arc<CellOutcome>>> {
        lock_unpoisoned(&self.state)
    }

    fn complete(&self, outcome: Arc<CellOutcome>) {
        *self.lock() = Some(outcome);
        self.cond.notify_all();
    }

    /// Blocks until the slot is filled or `deadline` passes.
    #[must_use]
    pub fn wait_until(&self, deadline: Instant) -> Option<Arc<CellOutcome>> {
        let mut state = self.lock();
        loop {
            if let Some(outcome) = state.as_ref() {
                return Some(Arc::clone(outcome));
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, timeout) = tpi::wait_timeout_unpoisoned(&self.cond, state, deadline - now);
            state = next;
            if timeout.timed_out() && state.is_none() {
                return None;
            }
        }
    }
}

/// How a request obtains one cell.
pub enum CellPlan {
    /// Already computed: the outcome is immediately available.
    Cached(Arc<CellOutcome>),
    /// An identical cell is in flight: wait on its slot.
    Joined(Arc<FlightSlot>),
    /// This request leads the cell: it must enqueue the returned job.
    Lead(CellJob),
}

/// One unit of pooled work.
#[derive(Debug)]
pub struct CellJob {
    /// The cell to compute.
    pub key: CellKey,
    /// The slot every waiter of this cell blocks on.
    pub slot: Arc<FlightSlot>,
}

/// Default bound on the in-memory completed-result LRU.
pub const DEFAULT_MEMORY_CELLS: usize = 1024;

/// The bounded in-memory layer: completed results with last-use ticks.
/// Eviction is an O(n) scan for the least-recent tick — n is the memory
/// bound (a thousand or so), the map is behind a leaf lock, and
/// evictions only happen on inserts past the bound.
struct MemoryLru {
    map: HashMap<CellKey, (Arc<CellOutcome>, u64)>,
    tick: u64,
    cap: usize,
}

impl MemoryLru {
    fn new(cap: usize) -> MemoryLru {
        MemoryLru {
            map: HashMap::new(),
            tick: 0,
            cap: cap.max(1),
        }
    }

    fn get(&mut self, key: &CellKey) -> Option<Arc<CellOutcome>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(outcome, used)| {
            *used = tick;
            Arc::clone(outcome)
        })
    }

    /// Inserts and evicts down to the bound; returns how many entries
    /// were evicted.
    fn insert(&mut self, key: CellKey, outcome: Arc<CellOutcome>) -> u64 {
        self.tick += 1;
        self.map.insert(key, (outcome, self.tick));
        let mut evicted = 0;
        while self.map.len() > self.cap {
            let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| *k)
            else {
                break;
            };
            self.map.remove(&oldest);
            evicted += 1;
        }
        evicted
    }
}

/// Completed results plus the in-flight table. Lock order is always
/// `inflight` before `done`; both are leaf locks held only for map
/// operations (and, on the miss path, one disk-cache probe).
///
/// With a [`DiskCache`] attached the store is two-level: the `done` map
/// is a bounded LRU (so memory stays flat no matter how many distinct
/// cells the fleet has seen) and every successful computation is also
/// persisted, so a restarted replica answers its old cells from disk —
/// byte-identically — without recomputing.
pub struct CellStore {
    inflight: Mutex<HashMap<CellKey, Arc<FlightSlot>>>,
    done: Mutex<MemoryLru>,
    disk: Option<Arc<DiskCache>>,
    metrics: Option<Arc<Metrics>>,
}

impl Default for CellStore {
    fn default() -> CellStore {
        CellStore::new(DEFAULT_MEMORY_CELLS, None, None)
    }
}

impl CellStore {
    /// A store bounded to `memory_cells` completed results in memory,
    /// optionally backed by a persistent `disk` cache.
    #[must_use]
    pub fn new(
        memory_cells: usize,
        disk: Option<Arc<DiskCache>>,
        metrics: Option<Arc<Metrics>>,
    ) -> CellStore {
        CellStore {
            inflight: Mutex::new(HashMap::new()),
            done: Mutex::new(MemoryLru::new(memory_cells)),
            disk,
            metrics,
        }
    }

    /// The attached disk cache, if any.
    #[must_use]
    pub fn disk(&self) -> Option<&Arc<DiskCache>> {
        self.disk.as_ref()
    }

    fn inflight(&self) -> MutexGuard<'_, HashMap<CellKey, Arc<FlightSlot>>> {
        lock_unpoisoned(&self.inflight)
    }

    fn done(&self) -> MutexGuard<'_, MemoryLru> {
        lock_unpoisoned(&self.done)
    }

    fn memory_insert(&self, key: CellKey, outcome: Arc<CellOutcome>) {
        let evicted = self.done().insert(key, outcome);
        if evicted > 0 {
            if let Some(metrics) = &self.metrics {
                metrics
                    .memory_evictions
                    .fetch_add(evicted, Ordering::Relaxed);
            }
        }
    }

    /// Decides how to obtain `key`: cached (memory or a verified disk
    /// record), joined, or led. Registering the leader is atomic with
    /// the lookups, so two concurrent requests can never both lead the
    /// same cell. A disk hit is promoted into the memory LRU.
    #[must_use]
    pub fn plan(&self, key: CellKey) -> CellPlan {
        let mut inflight = self.inflight();
        if let Some(outcome) = self.done().get(&key) {
            return CellPlan::Cached(outcome);
        }
        if let Some(slot) = inflight.get(&key) {
            return CellPlan::Joined(Arc::clone(slot));
        }
        if let Some(disk) = &self.disk {
            if let Some(json) = disk.get(&key) {
                let outcome = Arc::new(Ok(CellValue::Recovered(json)));
                self.memory_insert(key, Arc::clone(&outcome));
                return CellPlan::Cached(outcome);
            }
        }
        let slot = FlightSlot::new();
        inflight.insert(key, Arc::clone(&slot));
        CellPlan::Lead(CellJob { key, slot })
    }

    /// Publishes a finished cell: future requests hit the result cache,
    /// current waiters are woken. Experiment failures are cached too —
    /// they are deterministic results of the cell's inputs. Transient
    /// server states — `Overloaded`, `Panicked`, `ShuttingDown` — are
    /// *not* cached, so the next request retries the cell.
    ///
    /// Computed successes are also persisted to the disk cache (before
    /// the in-memory publish, so a crash after the waiters observe the
    /// result cannot lose it).
    pub fn finish(&self, job: &CellJob, outcome: CellOutcome) {
        let outcome = Arc::new(outcome);
        if let (Some(disk), Ok(value)) = (&self.disk, outcome.as_ref()) {
            disk.put(&job.key, &value.rendered(&job.key));
        }
        {
            let mut inflight = self.inflight();
            if matches!(outcome.as_ref(), Ok(_) | Err(CellError::Failed(_))) {
                self.memory_insert(job.key, Arc::clone(&outcome));
            }
            inflight.remove(&job.key);
        }
        job.slot.complete(outcome);
    }

    /// Number of completed cells held by the in-memory result cache.
    #[must_use]
    pub fn results_cached(&self) -> usize {
        self.done().map.len()
    }

    /// Number of cells currently in flight. Zero once every request has
    /// been terminally answered — `tpi-chaos` asserts exactly that at
    /// drain.
    #[must_use]
    pub fn inflight_cells(&self) -> usize {
        self.inflight().len()
    }

    /// A snapshot of the completed-result cache, in unspecified order.
    /// Verification layers (`tpi-chaos`) replay these against a fresh
    /// serial [`Runner`] to prove the cache was never silently corrupted.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(CellKey, Arc<CellOutcome>)> {
        self.done()
            .map
            .iter()
            .map(|(k, (v, _))| (*k, Arc::clone(v)))
            .collect()
    }
}

struct PoolShared {
    queue: Mutex<VecDeque<CellJob>>,
    cond: Condvar,
    cap: usize,
    busy: AtomicUsize,
    stop: AtomicBool,
    runner: Arc<Runner>,
    store: Arc<CellStore>,
    metrics: Arc<Metrics>,
    fault: Option<Arc<FaultPlan>>,
    /// Worker join handles, including respawns (see [`spawn_worker`]).
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Test hook: artificial per-cell latency, so backpressure and
    /// timeout paths can be exercised deterministically.
    cell_delay: Duration,
}

/// A fixed-size set of supervised worker threads fed by one bounded
/// queue. "Fixed-size" survives faults: a worker that dies respawns
/// itself unless the pool is stopping.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: usize,
}

impl WorkerPool {
    /// Spawns `workers` threads over a queue of capacity `queue_cap`.
    #[must_use]
    pub fn start(
        workers: usize,
        queue_cap: usize,
        runner: Arc<Runner>,
        store: Arc<CellStore>,
        metrics: Arc<Metrics>,
        fault: Option<Arc<FaultPlan>>,
        cell_delay: Duration,
    ) -> WorkerPool {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            cap: queue_cap.max(1),
            busy: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            runner,
            store,
            metrics,
            fault,
            handles: Mutex::new(Vec::new()),
            cell_delay,
        });
        for i in 0..workers {
            spawn_worker(&shared, i);
        }
        WorkerPool { shared, workers }
    }

    /// Enqueues a request's jobs, all or nothing. If the queue cannot
    /// take every job, nothing is enqueued and the jobs come back in
    /// `Err` — the caller must fail them (see [`CellStore::finish`] with
    /// [`CellError::Overloaded`] or [`CellError::ShuttingDown`]) so
    /// joined waiters are released too.
    ///
    /// # Errors
    ///
    /// Returns the jobs unchanged when the queue lacks room or the pool
    /// is shutting down.
    pub fn submit_batch(&self, jobs: Vec<CellJob>) -> Result<(), Vec<CellJob>> {
        if jobs.is_empty() {
            return Ok(());
        }
        let mut queue = lock_unpoisoned(&self.shared.queue);
        if self.shared.stop.load(Ordering::Acquire) || queue.len() + jobs.len() > self.shared.cap {
            return Err(jobs);
        }
        queue.extend(jobs);
        drop(queue);
        self.shared.cond.notify_all();
        Ok(())
    }

    /// Cells waiting in the queue right now.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        lock_unpoisoned(&self.shared.queue).len()
    }

    /// Workers currently computing a cell.
    #[must_use]
    pub fn busy(&self) -> usize {
        self.shared.busy.load(Ordering::Relaxed)
    }

    /// Size of the pool.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Queue capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shared.cap
    }

    /// Stops the pool: no new submissions are accepted, already-queued
    /// jobs are drained by the surviving workers (their waiters still
    /// get results), the workers exit and are joined — and if faults
    /// left the pool with no worker to drain the queue, whatever is
    /// still queued is terminally failed with
    /// [`CellError::ShuttingDown`], so every waiter resolves before
    /// shutdown returns.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.cond.notify_all();
        // Respawning workers may add handles while we join: loop until
        // the registry is empty.
        loop {
            let batch: Vec<_> = lock_unpoisoned(&self.shared.handles).drain(..).collect();
            if batch.is_empty() {
                break;
            }
            for h in batch {
                let _ = h.join();
            }
        }
        let leftovers: Vec<CellJob> = lock_unpoisoned(&self.shared.queue).drain(..).collect();
        for job in &leftovers {
            self.shared.store.finish(job, Err(CellError::ShuttingDown));
        }
    }
}

/// Spawns worker `index` and registers its handle. The thread supervises
/// itself: if `worker_loop` unwinds (an injected `worker_exit` fault or
/// a real bug outside the per-cell guard), the dying thread counts the
/// restart and spawns its replacement — unless the pool is stopping.
fn spawn_worker(shared: &Arc<PoolShared>, index: usize) {
    let thread_shared = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(format!("tpi-serve-worker-{index}"))
        .spawn(move || {
            let died = catch_cell_panic(|| worker_loop(&thread_shared)).is_err();
            if died && !thread_shared.stop.load(Ordering::Acquire) {
                thread_shared
                    .metrics
                    .worker_restarts
                    .fetch_add(1, Ordering::Relaxed);
                spawn_worker(&thread_shared, index);
            }
        })
        .expect("spawn worker");
    lock_unpoisoned(&shared.handles).push(handle);
}

/// Releases a claimed job's waiters if the worker unwinds anywhere
/// between claiming the job and publishing its outcome. Layer 2 of the
/// isolation story (see the [module docs](self)): the per-cell
/// `catch_cell_panic` handles panics *inside* the computation; this
/// guard covers the rest of the job's lifetime.
struct JobGuard<'a> {
    shared: &'a PoolShared,
    job: &'a CellJob,
    armed: bool,
}

impl Drop for JobGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.shared
                .metrics
                .cell_panics
                .fetch_add(1, Ordering::Relaxed);
            self.shared.store.finish(
                self.job,
                Err(CellError::Panicked("worker died mid-cell".to_owned())),
            );
            self.shared.busy.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = lock_unpoisoned(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                queue = tpi::wait_unpoisoned(&shared.cond, queue);
            }
        };
        shared.busy.fetch_add(1, Ordering::Relaxed);
        let mut guard = JobGuard {
            shared,
            job: &job,
            armed: true,
        };
        if let Some(delay) = shared.fault.as_ref().and_then(|p| p.cell_latency()) {
            shared.metrics.fault(FaultSite::CellLatency);
            std::thread::sleep(delay);
        }
        if !shared.cell_delay.is_zero() {
            std::thread::sleep(shared.cell_delay);
        }
        let mut outcome = catch_cell_panic(|| {
            if let Some(plan) = &shared.fault {
                if plan.fires(FaultSite::WorkerPanic) {
                    shared.metrics.fault(FaultSite::WorkerPanic);
                    panic!(
                        "{INJECTED_PANIC_PREFIX} worker_panic in {:?}",
                        job.key.kernel
                    );
                }
            }
            compute(&shared.runner, &job.key)
        })
        .unwrap_or_else(|message| {
            shared.metrics.cell_panics.fetch_add(1, Ordering::Relaxed);
            Err(CellError::Panicked(message))
        });
        if let (Some(plan), Ok(CellValue::Computed(result))) = (&shared.fault, &mut outcome) {
            if plan.corrupts(&job.key) {
                shared.metrics.fault(FaultSite::CacheCorrupt);
                // A detectable lie: flip the headline counter the
                // byte-identity check renders first.
                result.sim.total_cycles ^= 0x00C0_FFEE;
            }
        }
        shared
            .metrics
            .cells_computed
            .fetch_add(1, Ordering::Relaxed);
        shared.store.finish(&job, outcome);
        guard.armed = false;
        shared.busy.fetch_sub(1, Ordering::Relaxed);
        if let Some(plan) = &shared.fault {
            if plan.fires(FaultSite::WorkerExit) {
                shared.metrics.fault(FaultSite::WorkerExit);
                // The job is already published: this kills only the
                // thread, and supervision respawns it.
                panic!("{INJECTED_PANIC_PREFIX} worker_exit");
            }
        }
    }
}

/// The panic-contained cell computation: panics inside the engine are
/// already fenced by [`Runner::run_kernel_safe`]; the worker adds its
/// own fence around the fault hooks (see [`worker_loop`]).
fn compute(runner: &Runner, key: &CellKey) -> CellOutcome {
    let config = key
        .config()
        .map_err(|e| CellError::Failed(format!("invalid machine: {e}")))?;
    match runner.run_kernel_safe(key.kernel, key.scale, &config) {
        Ok(result) => result
            .map(|result| CellValue::Computed(Box::new(result)))
            .map_err(|e| CellError::Failed(e.to_string())),
        Err(panic_message) => Err(CellError::Panicked(panic_message)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_compiler::OptLevel;
    use tpi_proto::SchemeId;
    use tpi_workloads::{Kernel, Scale};

    fn key(seed: u64) -> CellKey {
        CellKey {
            kernel: Kernel::Flo52,
            scale: Scale::Test,
            scheme: SchemeId::TPI,
            opt_level: OptLevel::Full,
            procs: 16,
            line_words: 4,
            cache_bytes: 64 * 1024,
            tag_bits: 8,
            seed,
        }
    }

    fn pool(workers: usize, cap: usize, delay: Duration) -> (WorkerPool, Arc<CellStore>) {
        faulted_pool(workers, cap, delay, None)
    }

    fn faulted_pool(
        workers: usize,
        cap: usize,
        delay: Duration,
        fault: Option<Arc<FaultPlan>>,
    ) -> (WorkerPool, Arc<CellStore>) {
        let store = Arc::new(CellStore::default());
        let pool = WorkerPool::start(
            workers,
            cap,
            Arc::new(Runner::serial()),
            Arc::clone(&store),
            Arc::new(Metrics::default()),
            fault,
            delay,
        );
        (pool, store)
    }

    #[test]
    fn memory_lru_evicts_and_disk_recovers_byte_identically() {
        let dir = std::env::temp_dir().join(format!("tpi-pool-lru-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let metrics = Arc::new(Metrics::default());
        let (disk, _) = DiskCache::open(&dir, None, Arc::clone(&metrics)).unwrap();
        let disk = Arc::new(disk);
        let store = Arc::new(CellStore::new(
            2,
            Some(Arc::clone(&disk)),
            Some(Arc::clone(&metrics)),
        ));
        let pool = WorkerPool::start(
            1,
            8,
            Arc::new(Runner::serial()),
            Arc::clone(&store),
            Arc::clone(&metrics),
            None,
            Duration::ZERO,
        );
        let mut rendered = Vec::new();
        for seed in 70..73 {
            let CellPlan::Lead(job) = store.plan(key(seed)) else {
                panic!("fresh cells must be led");
            };
            let slot = Arc::clone(&job.slot);
            pool.submit_batch(vec![job]).unwrap();
            let outcome = slot
                .wait_until(Instant::now() + Duration::from_secs(30))
                .unwrap();
            let Ok(value) = outcome.as_ref() else {
                panic!("cell computes: {outcome:?}");
            };
            rendered.push(value.rendered(&key(seed)));
        }
        // Three results through a 2-cell memory bound: one eviction,
        // every result still on disk.
        assert_eq!(store.results_cached(), 2);
        assert!(metrics.memory_evictions.load(Ordering::Relaxed) >= 1);
        assert_eq!(disk.entries(), 3);
        // The evicted cell (the least-recently used: seed 70) comes back
        // as a Cached plan via the disk, byte-identical to the original.
        let CellPlan::Cached(outcome) = store.plan(key(70)) else {
            panic!("disk-held cell must be a cache hit");
        };
        let Ok(value) = outcome.as_ref() else {
            panic!("recovered cell is a success: {outcome:?}");
        };
        assert!(matches!(value, CellValue::Recovered(_)));
        assert_eq!(value.rendered(&key(70)), rendered[0]);
        // A cold store over the same directory is warm too.
        let cold = CellStore::new(8, Some(Arc::clone(&disk)), None);
        let CellPlan::Cached(outcome) = cold.plan(key(71)) else {
            panic!("restart must be warm");
        };
        assert_eq!(
            outcome.as_ref().as_ref().unwrap().rendered(&key(71)),
            rendered[1]
        );
        pool.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn computes_and_caches_a_cell() {
        let (pool, store) = pool(1, 4, Duration::ZERO);
        let CellPlan::Lead(job) = store.plan(key(1)) else {
            panic!("fresh cell must be led");
        };
        let slot = Arc::clone(&job.slot);
        pool.submit_batch(vec![job]).unwrap();
        let outcome = slot
            .wait_until(Instant::now() + Duration::from_secs(30))
            .expect("cell completes");
        assert!(outcome.is_ok());
        // Second plan hits the result cache.
        assert!(matches!(store.plan(key(1)), CellPlan::Cached(_)));
        assert_eq!(store.results_cached(), 1);
        assert_eq!(store.inflight_cells(), 0);
        pool.shutdown();
    }

    #[test]
    fn duplicate_inflight_cells_join_one_flight() {
        // A long artificial delay holds the cell in flight while the
        // second plan is made.
        let (pool, store) = pool(1, 4, Duration::from_millis(200));
        let CellPlan::Lead(job) = store.plan(key(2)) else {
            panic!("fresh cell must be led");
        };
        let lead_slot = Arc::clone(&job.slot);
        pool.submit_batch(vec![job]).unwrap();
        let CellPlan::Joined(join_slot) = store.plan(key(2)) else {
            panic!("in-flight cell must be joined");
        };
        assert!(Arc::ptr_eq(&lead_slot, &join_slot));
        let a = lead_slot
            .wait_until(Instant::now() + Duration::from_secs(30))
            .unwrap();
        let b = join_slot
            .wait_until(Instant::now() + Duration::from_secs(30))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "both waiters see the same outcome");
        pool.shutdown();
    }

    #[test]
    fn queue_overflow_is_all_or_nothing() {
        let (pool, store) = pool(1, 2, Duration::from_millis(300));
        // Occupy the worker and fill the queue.
        let mut jobs = Vec::new();
        for seed in 10..13 {
            match store.plan(key(seed)) {
                CellPlan::Lead(job) => jobs.push(job),
                _ => panic!("fresh cells must be led"),
            }
        }
        // 3 jobs > capacity 2: refused as a unit, jobs returned.
        let back = pool.submit_batch(jobs).unwrap_err();
        assert_eq!(back.len(), 3);
        assert_eq!(pool.queue_depth(), 0);
        // Failing them with Overloaded releases any joined waiter.
        for job in &back {
            store.finish(job, Err(CellError::Overloaded));
        }
        let outcome = back[0]
            .slot
            .wait_until(Instant::now() + Duration::from_millis(10))
            .unwrap();
        assert!(matches!(outcome.as_ref(), Err(CellError::Overloaded)));
        // Overloaded is transient: not cached, the cell can be retried.
        assert!(matches!(store.plan(key(10)), CellPlan::Lead(_)));
        pool.shutdown();
    }

    #[test]
    fn wait_until_respects_the_deadline() {
        let slot = FlightSlot::new();
        let t0 = Instant::now();
        assert!(slot
            .wait_until(Instant::now() + Duration::from_millis(30))
            .is_none());
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let (pool, store) = pool(2, 8, Duration::from_millis(20));
        let mut slots = Vec::new();
        let mut jobs = Vec::new();
        for seed in 20..26 {
            let CellPlan::Lead(job) = store.plan(key(seed)) else {
                panic!("fresh cells must be led");
            };
            slots.push(Arc::clone(&job.slot));
            jobs.push(job);
        }
        pool.submit_batch(jobs).unwrap();
        pool.shutdown();
        // Every queued job completed before the workers exited.
        for slot in slots {
            assert!(slot
                .wait_until(Instant::now() + Duration::from_millis(1))
                .is_some());
        }
        assert_eq!(store.results_cached(), 6);
    }

    #[test]
    fn a_panicking_cell_fails_only_its_waiters_and_is_not_cached() {
        let plan = Arc::new(FaultPlan::parse("seed=1,worker_panic=1@1").unwrap());
        let (pool, store) = faulted_pool(1, 4, Duration::ZERO, Some(Arc::clone(&plan)));
        let CellPlan::Lead(job) = store.plan(key(40)) else {
            panic!("fresh cell must be led");
        };
        let slot = Arc::clone(&job.slot);
        pool.submit_batch(vec![job]).unwrap();
        let outcome = slot
            .wait_until(Instant::now() + Duration::from_secs(30))
            .expect("slot resolves despite the panic");
        let Err(CellError::Panicked(message)) = outcome.as_ref() else {
            panic!("expected a contained panic, got {outcome:?}");
        };
        assert!(message.starts_with(INJECTED_PANIC_PREFIX), "{message}");
        // Nothing cached, no wedged flight: the retry recomputes and
        // succeeds (the fault's fire cap is exhausted).
        assert_eq!(store.results_cached(), 0);
        assert_eq!(store.inflight_cells(), 0);
        let CellPlan::Lead(retry) = store.plan(key(40)) else {
            panic!("failed cell must be retryable");
        };
        let retry_slot = Arc::clone(&retry.slot);
        pool.submit_batch(vec![retry]).unwrap();
        let outcome = retry_slot
            .wait_until(Instant::now() + Duration::from_secs(30))
            .unwrap();
        assert!(outcome.is_ok(), "retry must succeed: {outcome:?}");
        pool.shutdown();
    }

    #[test]
    fn a_dying_worker_is_respawned_and_the_pool_keeps_serving() {
        // Every cell kills its worker after publishing; supervision must
        // respawn it each time so all cells still complete.
        let plan = Arc::new(FaultPlan::parse("seed=2,worker_exit=1").unwrap());
        let store = Arc::new(CellStore::default());
        let metrics = Arc::new(Metrics::default());
        let pool = WorkerPool::start(
            1,
            8,
            Arc::new(Runner::serial()),
            Arc::clone(&store),
            Arc::clone(&metrics),
            Some(plan),
            Duration::ZERO,
        );
        let mut slots = Vec::new();
        let mut jobs = Vec::new();
        for seed in 50..53 {
            let CellPlan::Lead(job) = store.plan(key(seed)) else {
                panic!("fresh cells must be led");
            };
            slots.push(Arc::clone(&job.slot));
            jobs.push(job);
        }
        pool.submit_batch(jobs).unwrap();
        for slot in &slots {
            let outcome = slot
                .wait_until(Instant::now() + Duration::from_secs(30))
                .expect("cell completes despite worker deaths");
            assert!(outcome.is_ok());
        }
        // The dying thread counts its restart *after* publishing the
        // cell, so the last increment can trail the slot: poll briefly.
        let deadline = Instant::now() + Duration::from_secs(5);
        while metrics.worker_restarts.load(Ordering::Relaxed) < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(metrics.worker_restarts.load(Ordering::Relaxed) >= 3);
        pool.shutdown();
    }

    #[test]
    fn shutdown_terminally_fails_jobs_no_worker_can_drain() {
        // One worker that dies after its first cell, with stop already
        // requested so it is not respawned: the remaining queued jobs
        // must be answered with ShuttingDown, not wedged.
        let plan = Arc::new(FaultPlan::parse("seed=3,worker_exit=1").unwrap());
        let (pool, store) = faulted_pool(1, 8, Duration::from_millis(200), Some(plan));
        let mut slots = Vec::new();
        let mut jobs = Vec::new();
        for seed in 60..63 {
            let CellPlan::Lead(job) = store.plan(key(seed)) else {
                panic!("fresh cells must be led");
            };
            slots.push(Arc::clone(&job.slot));
            jobs.push(job);
        }
        pool.submit_batch(jobs).unwrap();
        // The worker is busy with the first cell for ~200ms; stop now.
        pool.shutdown();
        let mut shut_down = 0;
        for slot in &slots {
            let outcome = slot
                .wait_until(Instant::now() + Duration::from_millis(10))
                .expect("every slot resolves by the end of shutdown");
            if matches!(outcome.as_ref(), Err(CellError::ShuttingDown)) {
                shut_down += 1;
            }
        }
        assert_eq!(shut_down, 2, "the two undrained jobs fail terminally");
        assert_eq!(store.inflight_cells(), 0);
    }
}
