//! Wire types of the experiment API: grid requests, cell identities, and
//! response rendering.
//!
//! A grid request is a cross product — kernels × schemes × optimization
//! levels × processor counts — over one shared machine description, the
//! same shape as the paper's evaluation tables. Every cell is validated
//! through [`ExperimentConfig::builder`] before anything runs, so an
//! invalid machine is a 400, never a mid-simulation panic.

use crate::json::{escape, Json};
use tpi::{ConfigError, ExperimentConfig, ExperimentResult};
use tpi_compiler::OptLevel;
use tpi_proto::{registry, SchemeId};
use tpi_workloads::{Kernel, Scale};

/// Optimization levels the API accepts.
pub const ALL_OPT_LEVELS: [OptLevel; 3] = [OptLevel::Naive, OptLevel::Intra, OptLevel::Full];

fn opt_label(level: OptLevel) -> &'static str {
    match level {
        OptLevel::Naive => "naive",
        OptLevel::Intra => "intra",
        OptLevel::Full => "full",
    }
}

fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Paper => "paper",
        Scale::Large => "large",
    }
}

/// The identity of one grid cell: exactly the knobs the API exposes.
/// This is the key for the service's single-flight table and result
/// cache, and it expands into a full [`ExperimentConfig`] on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Benchmark kernel.
    pub kernel: Kernel,
    /// Problem size.
    pub scale: Scale,
    /// Coherence scheme.
    pub scheme: SchemeId,
    /// Compiler optimization level.
    pub opt_level: OptLevel,
    /// Processor count.
    pub procs: u32,
    /// Words per cache line.
    pub line_words: u32,
    /// Cache capacity per node, bytes.
    pub cache_bytes: usize,
    /// Timetag width.
    pub tag_bits: u32,
    /// Scheduling / subscript seed.
    pub seed: u64,
}

impl CellKey {
    /// Expands the key into a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] for the first violated machine
    /// constraint.
    pub fn config(&self) -> Result<ExperimentConfig, ConfigError> {
        ExperimentConfig::builder()
            .scheme(self.scheme)
            .opt_level(self.opt_level)
            .procs(self.procs)
            .line_words(self.line_words)
            .cache_bytes(self.cache_bytes)
            .tag_bits(self.tag_bits)
            .seed(self.seed)
            .build()
    }

    /// A canonical, stable, human-readable identity string. The disk
    /// cache stores it inside every record (so a hash collision can be
    /// told from a hit) and the router hashes it onto the replica ring —
    /// both sides must render identical strings for identical keys, so
    /// the format is part of the on-disk contract and versioned with it.
    #[must_use]
    pub fn canonical(&self) -> String {
        format!(
            "kernel={} scale={} scheme={} opt={} procs={} line_words={} cache_bytes={} tag_bits={} seed={}",
            self.kernel.name(),
            scale_label(self.scale),
            self.scheme.as_str(),
            opt_label(self.opt_level),
            self.procs,
            self.line_words,
            self.cache_bytes,
            self.tag_bits,
            self.seed,
        )
    }

    /// A request body whose grid expands to exactly this cell — how the
    /// router forwards one cell to the replica that owns it.
    #[must_use]
    pub fn single_cell_body(&self) -> String {
        Json::obj([
            ("kernels", Json::Arr(vec![Json::from(self.kernel.name())])),
            ("scale", Json::from(scale_label(self.scale))),
            ("schemes", Json::Arr(vec![Json::from(self.scheme.as_str())])),
            (
                "opt_levels",
                Json::Arr(vec![Json::from(opt_label(self.opt_level))]),
            ),
            ("procs", Json::Arr(vec![Json::from(self.procs)])),
            ("line_words", Json::from(self.line_words)),
            ("cache_bytes", Json::from(self.cache_bytes)),
            ("tag_bits", Json::from(self.tag_bits)),
            ("seed", Json::from(self.seed)),
        ])
        .render()
    }

    /// The cell's coordinates as a JSON object (no results).
    #[must_use]
    pub fn coordinates(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("kernel", Json::from(self.kernel.name())),
            ("scheme", Json::from(self.scheme.label())),
            ("opt_level", Json::from(opt_label(self.opt_level))),
            ("procs", Json::from(self.procs)),
            ("scale", Json::from(scale_label(self.scale))),
        ]
    }
}

/// A parsed, validated grid request.
#[derive(Debug, Clone)]
pub struct GridRequest {
    /// Kernels, in request order.
    pub kernels: Vec<Kernel>,
    /// Problem size for every cell.
    pub scale: Scale,
    /// Schemes, in request order.
    pub schemes: Vec<SchemeId>,
    /// Optimization levels, in request order.
    pub opt_levels: Vec<OptLevel>,
    /// Processor counts, in request order.
    pub procs: Vec<u32>,
    /// Words per cache line (shared by every cell).
    pub line_words: u32,
    /// Cache capacity per node, bytes (shared by every cell).
    pub cache_bytes: usize,
    /// Timetag width (shared by every cell).
    pub tag_bits: u32,
    /// Scheduling seed (shared by every cell).
    pub seed: u64,
}

/// Why a request was rejected (always a 400).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadRequest {
    /// Stable machine-readable code (`bad_json`, `bad_field`,
    /// `bad_machine`, `too_many_cells`).
    pub code: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl BadRequest {
    fn field(message: String) -> BadRequest {
        BadRequest {
            code: "bad_field",
            message,
        }
    }

    /// Renders the structured error body every 4xx/5xx response carries.
    #[must_use]
    pub fn body(&self) -> String {
        Json::obj([(
            "error",
            Json::obj([
                ("code", Json::from(self.code)),
                ("message", Json::from(self.message.clone())),
            ]),
        )])
        .render()
    }
}

fn parse_kernel(name: &str) -> Result<Kernel, String> {
    Kernel::ALL
        .into_iter()
        .chain(Kernel::EXTENDED)
        .find(|k| k.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown kernel {name:?}"))
}

/// Resolves a scheme name (id or label, case-insensitive) against the
/// global registry; the error message lists every registered scheme.
fn parse_scheme(name: &str) -> Result<SchemeId, String> {
    registry::global()
        .lookup(name)
        .map(|s| s.id())
        .map_err(|e| e.to_string())
}

fn parse_opt_level(name: &str) -> Result<OptLevel, String> {
    ALL_OPT_LEVELS
        .into_iter()
        .find(|l| opt_label(*l).eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown opt_level {name:?}"))
}

fn string_list<T>(
    doc: &Json,
    key: &str,
    parse_one: impl Fn(&str) -> Result<T, String>,
) -> Result<Option<Vec<T>>, BadRequest> {
    let Some(value) = doc.get(key) else {
        return Ok(None);
    };
    let items = value
        .as_array()
        .ok_or_else(|| BadRequest::field(format!("\"{key}\" must be an array of strings")))?;
    if items.is_empty() {
        return Err(BadRequest::field(format!("\"{key}\" must not be empty")));
    }
    items
        .iter()
        .map(|item| {
            let name = item
                .as_str()
                .ok_or_else(|| BadRequest::field(format!("\"{key}\" must contain strings")))?;
            parse_one(name).map_err(BadRequest::field)
        })
        .collect::<Result<Vec<T>, BadRequest>>()
        .map(Some)
}

fn scalar_u64(doc: &Json, key: &str) -> Result<Option<u64>, BadRequest> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| BadRequest::field(format!("\"{key}\" must be a non-negative integer"))),
    }
}

impl GridRequest {
    /// Parses and validates a request document. Defaults: every kernel of
    /// the paper suite, `scale: "test"`, `schemes: ["TPI"]`,
    /// `opt_levels: ["full"]`, `procs: [16]`, and the paper machine for
    /// the scalar knobs.
    ///
    /// # Errors
    ///
    /// Returns a [`BadRequest`] naming the first invalid field, unknown
    /// enum name, or machine constraint violated by some cell.
    pub fn parse(doc: &Json) -> Result<GridRequest, BadRequest> {
        if !matches!(doc, Json::Obj(_)) {
            return Err(BadRequest::field("request body must be an object".into()));
        }
        let paper = ExperimentConfig::paper();
        let kernels =
            string_list(doc, "kernels", parse_kernel)?.unwrap_or_else(|| Kernel::ALL.to_vec());
        let schemes =
            string_list(doc, "schemes", parse_scheme)?.unwrap_or_else(|| vec![SchemeId::TPI]);
        let opt_levels = string_list(doc, "opt_levels", parse_opt_level)?
            .unwrap_or_else(|| vec![OptLevel::Full]);
        let scale = match doc.get("scale") {
            None => Scale::Test,
            Some(v) => match v.as_str() {
                Some(s) if s.eq_ignore_ascii_case("test") => Scale::Test,
                Some(s) if s.eq_ignore_ascii_case("paper") => Scale::Paper,
                Some(s) if s.eq_ignore_ascii_case("large") => Scale::Large,
                _ => {
                    return Err(BadRequest::field(
                        "\"scale\" must be \"test\", \"paper\", or \"large\"".into(),
                    ))
                }
            },
        };
        let procs = match doc.get("procs") {
            None => vec![paper.procs],
            Some(v) => {
                let items = v.as_array().ok_or_else(|| {
                    BadRequest::field("\"procs\" must be an array of integers".into())
                })?;
                if items.is_empty() {
                    return Err(BadRequest::field("\"procs\" must not be empty".into()));
                }
                items
                    .iter()
                    .map(|item| {
                        item.as_u64()
                            .and_then(|n| u32::try_from(n).ok())
                            .filter(|&n| n > 0 && n <= ExperimentConfig::MAX_PROCS)
                            .ok_or_else(|| {
                                BadRequest::field(format!(
                                    "\"procs\" must contain integers in 1..={}",
                                    ExperimentConfig::MAX_PROCS
                                ))
                            })
                    })
                    .collect::<Result<Vec<u32>, BadRequest>>()?
            }
        };
        let line_words = match scalar_u64(doc, "line_words")? {
            None => paper.line_words,
            Some(n) => u32::try_from(n)
                .map_err(|_| BadRequest::field("\"line_words\" out of range".into()))?,
        };
        let cache_bytes = match scalar_u64(doc, "cache_bytes")? {
            None => paper.cache_bytes,
            Some(n) => usize::try_from(n)
                .map_err(|_| BadRequest::field("\"cache_bytes\" out of range".into()))?,
        };
        let tag_bits = match scalar_u64(doc, "tag_bits")? {
            None => paper.tag_bits,
            Some(n) => u32::try_from(n)
                .map_err(|_| BadRequest::field("\"tag_bits\" out of range".into()))?,
        };
        let seed = scalar_u64(doc, "seed")?.unwrap_or(paper.seed);

        let known = [
            "kernels",
            "scale",
            "schemes",
            "opt_levels",
            "procs",
            "line_words",
            "cache_bytes",
            "tag_bits",
            "seed",
        ];
        if let Json::Obj(members) = doc {
            if let Some((unknown, _)) = members.iter().find(|(k, _)| !known.contains(&k.as_str())) {
                return Err(BadRequest::field(format!("unknown field {unknown:?}")));
            }
        }

        let request = GridRequest {
            kernels,
            scale,
            schemes,
            opt_levels,
            procs,
            line_words,
            cache_bytes,
            tag_bits,
            seed,
        };
        // Validate every distinct machine up front: one builder call per
        // (scheme, procs) pair covers all cells.
        for &scheme in &request.schemes {
            for &procs in &request.procs {
                let probe = CellKey {
                    kernel: request.kernels[0],
                    scale: request.scale,
                    scheme,
                    opt_level: request.opt_levels[0],
                    procs,
                    line_words: request.line_words,
                    cache_bytes: request.cache_bytes,
                    tag_bits: request.tag_bits,
                    seed: request.seed,
                };
                if let Err(e) = probe.config() {
                    return Err(BadRequest {
                        code: "bad_machine",
                        message: e.to_string(),
                    });
                }
            }
        }
        Ok(request)
    }

    /// Expands the cross product into cell keys: kernels-major, then
    /// schemes, then optimization levels, then processor counts — the
    /// row order of the paper's tables. This order is the response order.
    #[must_use]
    pub fn cells(&self) -> Vec<CellKey> {
        let mut out =
            Vec::with_capacity(self.kernels.len() * self.schemes.len() * self.opt_levels.len());
        for &kernel in &self.kernels {
            for &scheme in &self.schemes {
                for &opt_level in &self.opt_levels {
                    for &procs in &self.procs {
                        out.push(CellKey {
                            kernel,
                            scale: self.scale,
                            scheme,
                            opt_level,
                            procs,
                            line_words: self.line_words,
                            cache_bytes: self.cache_bytes,
                            tag_bits: self.tag_bits,
                            seed: self.seed,
                        });
                    }
                }
            }
        }
        out
    }
}

/// Guards a float against non-finite values (renders as `null`).
fn finite(n: f64) -> Json {
    if n.is_finite() {
        Json::Num(n)
    } else {
        Json::Null
    }
}

/// Renders one cell's result as the response's JSON object. This is a
/// pure function of `(key, result)` — the integration tests rely on the
/// served bytes matching a direct serial [`tpi::Runner`] run rendered
/// through this same function.
#[must_use]
pub fn render_cell(key: &CellKey, result: &ExperimentResult) -> Json {
    let mut members = key.coordinates();
    members.extend([
        ("total_cycles", Json::from(result.sim.total_cycles)),
        ("miss_rate", finite(result.sim.miss_rate())),
        ("avg_miss_latency", finite(result.sim.avg_miss_latency())),
        ("reads", Json::from(result.trace.reads)),
        ("marked_reads", Json::from(result.trace.marked_reads)),
        ("writes", Json::from(result.trace.writes)),
        ("epochs", Json::from(result.trace.epochs)),
        (
            "marking",
            Json::obj([
                ("shared_reads", Json::from(result.marking.shared_reads)),
                ("marked", Json::from(result.marking.marked)),
                ("plain", Json::from(result.marking.plain)),
                ("covered", Json::from(result.marking.covered)),
            ]),
        ),
    ]);
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

/// Renders an error cell (a [`tpi_trace::TraceError`] from the engine).
#[must_use]
pub fn render_cell_error(key: &CellKey, message: &str) -> Json {
    let mut members = key.coordinates();
    members.push(("error", Json::from(message)));
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

/// The `GET /v1/kernels` body.
#[must_use]
pub fn kernels_body() -> String {
    let items: Vec<Json> = Kernel::ALL
        .into_iter()
        .chain(Kernel::EXTENDED)
        .map(|k| {
            Json::obj([
                ("name", Json::from(k.name())),
                ("description", Json::from(k.description())),
            ])
        })
        .collect();
    Json::obj([("kernels", Json::Arr(items))]).render()
}

/// The `GET /v1/schemes` body: one metadata object per registered scheme,
/// in registration order, straight from the global [`registry`].
#[must_use]
pub fn schemes_body() -> String {
    let items: Vec<Json> = registry::global()
        .all()
        .iter()
        .map(|s| {
            Json::obj([
                ("id", Json::from(s.id().as_str())),
                ("label", Json::from(s.label())),
                ("description", Json::from(s.description())),
                ("paper_main", Json::Bool(s.paper_main())),
                (
                    "storage_bits_per_word",
                    Json::from(s.storage_bits_per_word()),
                ),
            ])
        })
        .collect();
    Json::obj([("schemes", Json::Arr(items))]).render()
}

/// Renders a plain `{"error":{...}}` body for a status + message pair.
#[must_use]
pub fn error_body(code: &str, message: &str) -> String {
    format!(
        "{{\"error\":{{\"code\":{},\"message\":{}}}}}",
        escape(code),
        escape(message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn parses_a_full_request() {
        let doc = parse(
            r#"{"kernels":["FLO52","ocean"],"schemes":["TPI","HW"],
                "opt_levels":["naive","full"],"procs":[8,16],"scale":"test",
                "line_words":8,"cache_bytes":131072,"tag_bits":4,"seed":9}"#,
        )
        .unwrap();
        let req = GridRequest::parse(&doc).unwrap();
        assert_eq!(req.kernels, vec![Kernel::Flo52, Kernel::Ocean]);
        assert_eq!(req.schemes, vec![SchemeId::TPI, SchemeId::FULL_MAP]);
        assert_eq!(req.procs, vec![8, 16]);
        assert_eq!(req.cells().len(), 2 * 2 * 2 * 2);
        // Cell order is kernels-major.
        let cells = req.cells();
        assert_eq!(cells[0].kernel, Kernel::Flo52);
        assert_eq!(cells[0].scheme, SchemeId::TPI);
        assert_eq!(cells.last().unwrap().kernel, Kernel::Ocean);
    }

    #[test]
    fn schemes_resolve_by_id_or_label_case_insensitively() {
        let doc = parse(r#"{"schemes":["tardis","hyb","Tpi","hw"]}"#).unwrap();
        let req = GridRequest::parse(&doc).unwrap();
        assert_eq!(
            req.schemes,
            vec![
                SchemeId::TARDIS,
                SchemeId::HYBRID,
                SchemeId::TPI,
                SchemeId::FULL_MAP
            ]
        );
    }

    #[test]
    fn unknown_scheme_error_lists_the_registry() {
        let doc = parse(r#"{"schemes":["MESI"]}"#).unwrap();
        let err = GridRequest::parse(&doc).unwrap_err();
        assert_eq!(err.code, "bad_field");
        assert!(
            err.message.contains("registered:") && err.message.contains("tardis"),
            "{}",
            err.message
        );
    }

    #[test]
    fn defaults_cover_the_paper_suite() {
        let req = GridRequest::parse(&parse("{}").unwrap()).unwrap();
        assert_eq!(req.kernels, Kernel::ALL.to_vec());
        assert_eq!(req.schemes, vec![SchemeId::TPI]);
        assert_eq!(req.procs, vec![16]);
        assert_eq!(req.cells().len(), 6);
    }

    #[test]
    fn rejects_unknown_names_and_fields() {
        for (body, want) in [
            (r#"{"kernels":["NOPE"]}"#, "bad_field"),
            (r#"{"kernels":[]}"#, "bad_field"),
            (r#"{"schemes":["XX"]}"#, "bad_field"),
            (r#"{"opt_levels":["max"]}"#, "bad_field"),
            (r#"{"procs":[0]}"#, "bad_field"),
            (r#"{"scale":"huge"}"#, "bad_field"),
            (r#"{"bogus":1}"#, "bad_field"),
            (r#"{"seed":-1}"#, "bad_field"),
            (r#"{"cache_bytes":48000}"#, "bad_machine"),
            (r#"{"tag_bits":1}"#, "bad_machine"),
        ] {
            let err = GridRequest::parse(&parse(body).unwrap()).unwrap_err();
            assert_eq!(err.code, want, "{body}: {}", err.message);
        }
    }

    #[test]
    fn cell_key_expands_to_valid_config() {
        let req = GridRequest::parse(&parse(r#"{"kernels":["TRFD"]}"#).unwrap()).unwrap();
        let cfg = req.cells()[0].config().unwrap();
        assert_eq!(cfg.scheme, SchemeId::TPI);
        assert_eq!(cfg.procs, 16);
    }

    #[test]
    fn schemes_body_carries_registry_metadata() {
        let doc = parse(&schemes_body()).unwrap();
        let items = doc.get("schemes").and_then(Json::as_array).unwrap();
        assert_eq!(items.len(), registry::global().all().len());
        let tardis = items
            .iter()
            .find(|s| s.get("id").and_then(Json::as_str) == Some("tardis"))
            .expect("tardis is registered");
        assert_eq!(tardis.get("label").and_then(Json::as_str), Some("TARDIS"));
        assert_eq!(tardis.get("paper_main"), Some(&Json::Bool(false)));
        assert!(tardis
            .get("storage_bits_per_word")
            .and_then(Json::as_u64)
            .is_some());
        let main: usize = items
            .iter()
            .filter(|s| s.get("paper_main") == Some(&Json::Bool(true)))
            .count();
        assert_eq!(main, 4, "the paper's main comparison is four-way");
    }

    #[test]
    fn single_cell_body_roundtrips_to_the_same_key() {
        let req = GridRequest::parse(
            &parse(r#"{"kernels":["ocean"],"schemes":["tardis"],"opt_levels":["intra"],"procs":[8],"seed":5}"#)
                .unwrap(),
        )
        .unwrap();
        let key = req.cells()[0];
        let body = key.single_cell_body();
        let reparsed = GridRequest::parse(&parse(&body).unwrap()).unwrap();
        assert_eq!(reparsed.cells(), vec![key]);
        assert_eq!(
            key.canonical(),
            "kernel=OCEAN scale=test scheme=tardis opt=intra procs=8 \
             line_words=4 cache_bytes=65536 tag_bits=8 seed=5"
        );
    }

    #[test]
    fn discovery_bodies_are_valid_json() {
        for body in [kernels_body(), schemes_body()] {
            let doc = parse(&body).unwrap();
            assert!(matches!(doc, Json::Obj(_)));
        }
        assert_eq!(
            error_body("bad_json", "x"),
            r#"{"error":{"code":"bad_json","message":"x"}}"#
        );
    }
}
