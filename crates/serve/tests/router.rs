//! End-to-end tests of `tpi-router` fronting real in-process replicas.
//!
//! Three promises, pinned over real sockets:
//!
//! 1. **No hangs when the fleet is gone.** With every replica past its
//!    health lease the router answers `503` with a `Retry-After` header
//!    and the terminal `all_replicas_draining` code — promptly.
//! 2. **Failover is invisible to clients.** With one replica dead but
//!    still inside its lease, every cell it owned fails over and the
//!    response stays byte-identical to a fresh serial runner.
//! 3. **Global single-flight.** Identical in-flight cells from different
//!    client connections reach a replica exactly once.

use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};
use tpi::Runner;
use tpi_serve::json::{parse, Json};
use tpi_serve::loadgen::post;
use tpi_serve::router::{Router, RouterConfig};
use tpi_serve::server::{ServeConfig, Server};
use tpi_serve::wire::{render_cell, GridRequest};

const CLIENT_TIMEOUT: Duration = Duration::from_secs(120);

fn start_router(replicas: Vec<SocketAddr>, lease: Duration) -> Router {
    Router::start(RouterConfig {
        addr: "127.0.0.1:0".to_owned(),
        replicas,
        probe_interval: Duration::from_millis(25),
        lease,
        ..RouterConfig::default()
    })
    .expect("bind an ephemeral port")
}

/// An address nothing listens on: bind an ephemeral port, then drop it.
fn dead_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.local_addr().unwrap()
}

/// What the fleet must return for `body`: every cell computed by a
/// fresh *serial* runner, rendered through the same pure function.
fn expected_response(runner: &Runner, body: &str) -> String {
    let grid = GridRequest::parse(&parse(body).unwrap()).unwrap();
    let rendered: Vec<Json> = grid
        .cells()
        .iter()
        .map(|key| {
            let config = key.config().unwrap();
            let result = runner.run_kernel(key.kernel, key.scale, &config).unwrap();
            render_cell(key, &result)
        })
        .collect();
    let count = rendered.len();
    Json::obj([("cells", Json::Arr(rendered)), ("count", Json::from(count))]).render()
}

/// Reads one `name value` sample out of a Prometheus text body.
fn metric_value(text: &str, name: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse().ok()
    })
}

#[test]
fn an_all_draining_fleet_gets_a_prompt_503_with_retry_after() {
    // One replica that was never alive; a short lease so the prober
    // drains it quickly.
    let router = start_router(vec![dead_addr()], Duration::from_millis(100));

    let deadline = Instant::now() + Duration::from_secs(10);
    while router.healthy_replicas() > 0 {
        assert!(
            Instant::now() < deadline,
            "the prober never drained a dead replica"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let started = Instant::now();
    let response = post(
        router.addr(),
        "/v1/experiments",
        r#"{"kernels":["FLO52"],"schemes":["TPI"]}"#,
        CLIENT_TIMEOUT,
    )
    .expect("the router must answer, not hang");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "an empty fleet must be rejected promptly, took {:?}",
        started.elapsed()
    );
    assert_eq!(response.status, 503);
    assert!(
        response.header("retry-after").is_some(),
        "terminal drain rejections still carry Retry-After"
    );
    let body = String::from_utf8_lossy(&response.body).into_owned();
    assert!(
        body.contains("all_replicas_draining"),
        "want the terminal drain code, got {body}"
    );

    let stats = router.shutdown();
    assert!(stats.rejected_draining > 0, "{stats:?}");
}

#[test]
fn a_dead_replica_inside_its_lease_fails_over_byte_identically() {
    let victim = Server::start(ServeConfig::default()).unwrap();
    let survivor = Server::start(ServeConfig::default()).unwrap();
    let victim_addr = victim.addr();

    // A one-hour lease: the victim's death is never observed by the
    // prober, so every one of its cells exercises the failover path
    // rather than the drain path.
    let router = start_router(
        vec![victim_addr, survivor.addr()],
        Duration::from_secs(3600),
    );
    victim.shutdown();

    // 16 cells, so the ring all but surely places some on the dead
    // replica no matter which ephemeral ports the OS handed out.
    let body = r#"{"kernels":["FLO52","TRFD"],"schemes":["TPI","HW"],"procs":[4,8,16,32]}"#;
    let response = post(router.addr(), "/v1/experiments", body, CLIENT_TIMEOUT).unwrap();
    assert_eq!(
        response.status,
        200,
        "failover must be invisible: {}",
        String::from_utf8_lossy(&response.body)
    );
    assert_eq!(
        String::from_utf8_lossy(&response.body),
        expected_response(&Runner::serial(), body),
        "failed-over responses stay byte-identical to a serial runner"
    );

    let metrics = tpi_serve::loadgen::get(router.addr(), "/metrics", CLIENT_TIMEOUT)
        .map(|r| String::from_utf8_lossy(&r.body).into_owned())
        .unwrap_or_default();
    assert!(
        metric_value(&metrics, "tpi_router_failovers_total").unwrap_or(0.0) > 0.0,
        "some cell must have failed over off the dead replica:\n{metrics}"
    );

    router.shutdown();
    let stats = survivor.shutdown();
    assert!(
        stats.experiment_requests >= 16,
        "every cell must land on the survivor: {stats:?}"
    );
}

#[test]
fn identical_inflight_cells_are_forwarded_exactly_once() {
    // One slow replica, so the second client reliably arrives while the
    // first's cell is still in flight.
    let replica = Server::start(ServeConfig {
        cell_delay: Duration::from_millis(500),
        ..ServeConfig::default()
    })
    .unwrap();
    let router = start_router(vec![replica.addr()], Duration::from_secs(3600));

    let body = r#"{"kernels":["FLO52"],"schemes":["TPI"]}"#;
    let (first, second) = std::thread::scope(|scope| {
        let a = scope.spawn(|| post(router.addr(), "/v1/experiments", body, CLIENT_TIMEOUT));
        let b = scope.spawn(|| post(router.addr(), "/v1/experiments", body, CLIENT_TIMEOUT));
        (a.join().unwrap().unwrap(), b.join().unwrap().unwrap())
    });
    assert_eq!(first.status, 200);
    assert_eq!(second.status, 200);
    assert_eq!(first.body, second.body);

    let metrics = tpi_serve::loadgen::get(router.addr(), "/metrics", CLIENT_TIMEOUT)
        .map(|r| String::from_utf8_lossy(&r.body).into_owned())
        .unwrap_or_default();
    assert!(
        metric_value(&metrics, "tpi_router_cells_joined_total").unwrap_or(0.0) >= 1.0,
        "the follower must join the leader's in-flight slot:\n{metrics}"
    );

    router.shutdown();
    let stats = replica.shutdown();
    assert_eq!(
        stats.experiment_requests, 1,
        "the replica must see the deduplicated cell once: {stats:?}"
    );
}
