//! End-to-end tests of the crash-safe persistent result cache.
//!
//! The two properties the disk store promises, proven over real server
//! restarts on a shared `--cache-dir`:
//!
//! 1. **Warm restarts.** A cold process over a warm directory serves
//!    byte-identical responses with zero recomputed cells.
//! 2. **Corruption is quarantined, never served.** A flipped byte in an
//!    on-disk record is detected by the checksum, the record is
//!    quarantined, and the cell is recomputed — the response stays
//!    byte-identical to a fresh serial run.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;
use tpi::Runner;
use tpi_serve::json::{parse, Json};
use tpi_serve::loadgen::post;
use tpi_serve::server::{ServeConfig, Server};
use tpi_serve::wire::{render_cell, GridRequest};

const CLIENT_TIMEOUT: Duration = Duration::from_secs(120);
const BODY: &str = r#"{"kernels":["FLO52","OCEAN"],"schemes":["TPI","HW"],"procs":[8]}"#;

fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "tpi-persistence-test-{}-{tag}-{n}",
        std::process::id()
    ))
}

fn start_with_cache(dir: &Path) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        cache_dir: Some(dir.to_path_buf()),
        ..ServeConfig::default()
    })
    .expect("bind an ephemeral port")
}

/// What the server must return for `BODY`, computed by a fresh serial
/// runner through the same rendering pipeline.
fn expected_response() -> String {
    let runner = Runner::serial();
    let grid = GridRequest::parse(&parse(BODY).unwrap()).unwrap();
    let rendered: Vec<Json> = grid
        .cells()
        .iter()
        .map(|key| {
            let config = key.config().unwrap();
            let result = runner.run_kernel(key.kernel, key.scale, &config).unwrap();
            render_cell(key, &result)
        })
        .collect();
    let count = rendered.len();
    Json::obj([("cells", Json::Arr(rendered)), ("count", Json::from(count))]).render()
}

#[test]
fn a_cold_restart_serves_byte_identical_results_with_zero_recomputes() {
    let dir = scratch_dir("warm");
    let cells = GridRequest::parse(&parse(BODY).unwrap())
        .unwrap()
        .cells()
        .len();

    let server = start_with_cache(&dir);
    let first = post(server.addr(), "/v1/experiments", BODY, CLIENT_TIMEOUT).unwrap();
    assert_eq!(first.status, 200);
    let stats = server.shutdown();
    assert_eq!(stats.cells_computed as usize, cells, "cold cache computes");

    // A brand-new process-equivalent: fresh Server, same directory.
    let server = start_with_cache(&dir);
    let recovery = server.recovery_report().expect("disk cache is configured");
    assert_eq!(recovery.valid, cells, "{recovery:?}");
    assert_eq!(recovery.quarantined, 0, "{recovery:?}");
    let second = post(server.addr(), "/v1/experiments", BODY, CLIENT_TIMEOUT).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(
        second.body, first.body,
        "a warm restart must serve byte-identical results"
    );
    assert_eq!(
        String::from_utf8_lossy(&second.body),
        expected_response(),
        "and those bytes match a fresh serial runner"
    );
    let stats = server.shutdown();
    assert_eq!(stats.cells_computed, 0, "a warm restart computes nothing");
    assert_eq!(stats.cells_cached as usize, cells);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_flipped_byte_is_quarantined_and_recomputed_never_served() {
    let dir = scratch_dir("corrupt");
    let cells = GridRequest::parse(&parse(BODY).unwrap())
        .unwrap()
        .cells()
        .len();

    let server = start_with_cache(&dir);
    let first = post(server.addr(), "/v1/experiments", BODY, CLIENT_TIMEOUT).unwrap();
    assert_eq!(first.status, 200);
    server.shutdown();

    // Flip one byte in the middle of one record.
    let victim = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "cell"))
        .expect("at least one persisted record");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&victim, &bytes).unwrap();

    // The startup recovery scan must catch it.
    let server = start_with_cache(&dir);
    let recovery = server.recovery_report().expect("disk cache is configured");
    assert_eq!(recovery.quarantined, 1, "{recovery:?}");
    assert_eq!(recovery.valid, cells - 1, "{recovery:?}");
    assert!(
        !victim.exists(),
        "the corrupt record is no longer a servable .cell file"
    );

    // The response is still byte-identical — the poisoned cell was
    // recomputed, not served.
    let second = post(server.addr(), "/v1/experiments", BODY, CLIENT_TIMEOUT).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.body, first.body);
    let stats = server.shutdown();
    assert_eq!(
        stats.cells_computed, 1,
        "exactly the quarantined cell is recomputed"
    );
    assert_eq!(stats.cells_cached as usize, cells - 1);

    let _ = std::fs::remove_dir_all(&dir);
}
