//! End-to-end tests of the experiment service.
//!
//! The central property: responses served under concurrency are
//! byte-identical to a direct serial [`tpi::Runner`] run rendered through
//! the same `render_cell` pipeline — batching, memoization, and
//! single-flight deduplication must never change the answer. The
//! remaining tests pin the robustness paths: backpressure → 503,
//! deadline → 504, malformed body → 400, and the discovery endpoints.

use std::collections::HashSet;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;
use tpi::Runner;
use tpi_serve::json::{parse, Json};
use tpi_serve::loadgen::{self, get, post, LoadgenConfig, RetryPolicy};
use tpi_serve::server::{ServeConfig, Server};
use tpi_serve::wire::{render_cell, GridRequest};
use tpi_serve::FaultPlan;

const CLIENT_TIMEOUT: Duration = Duration::from_secs(120);

fn start(config: ServeConfig) -> (Server, SocketAddr) {
    let server = Server::start(config).expect("bind an ephemeral port");
    let addr = server.addr();
    assert_ne!(addr.port(), 0, "port 0 must resolve to a real port");
    (server, addr)
}

/// What the server must return for `body`: every cell computed by a
/// fresh *serial* runner, rendered through the same pure function.
fn expected_response(runner: &Runner, body: &str) -> String {
    let grid = GridRequest::parse(&parse(body).unwrap()).unwrap();
    let rendered: Vec<Json> = grid
        .cells()
        .iter()
        .map(|key| {
            let config = key.config().unwrap();
            let result = runner.run_kernel(key.kernel, key.scale, &config).unwrap();
            render_cell(key, &result)
        })
        .collect();
    let count = rendered.len();
    Json::obj([("cells", Json::Arr(rendered)), ("count", Json::from(count))]).render()
}

/// Reads one `name value` sample out of a Prometheus text body.
fn metric_value(text: &str, name: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse().ok()
    })
}

#[test]
fn concurrent_overlapping_requests_match_a_serial_runner() {
    // Three grids that overlap pairwise, so concurrent requests contend
    // for the same cells.
    let bodies = [
        r#"{"kernels":["FLO52"],"schemes":["TPI","HW"]}"#,
        r#"{"kernels":["FLO52","TRFD"],"schemes":["TPI"]}"#,
        r#"{"kernels":["TRFD"],"schemes":["TPI","SC"]}"#,
    ];
    let unique_cells: HashSet<_> = bodies
        .iter()
        .flat_map(|body| GridRequest::parse(&parse(body).unwrap()).unwrap().cells())
        .collect();

    let serial = Runner::serial();
    let expected: Vec<String> = bodies
        .iter()
        .map(|body| expected_response(&serial, body))
        .collect();

    let (server, addr) = start(ServeConfig::default());
    // Four clients per grid, all in flight at once.
    std::thread::scope(|scope| {
        for round in 0..4 {
            for (body, want) in bodies.iter().zip(&expected) {
                scope.spawn(move || {
                    let response = post(addr, "/v1/experiments", body, CLIENT_TIMEOUT)
                        .expect("request completes");
                    assert_eq!(response.status, 200, "round {round}: {body}");
                    assert_eq!(
                        String::from_utf8_lossy(&response.body),
                        want.as_str(),
                        "served bytes must match the serial runner ({body})"
                    );
                });
            }
        }
    });

    // Single-flight: every duplicate cell was answered from the result
    // cache or by joining an in-flight computation, never recomputed.
    let metrics = get(addr, "/metrics", CLIENT_TIMEOUT).unwrap();
    assert_eq!(metrics.status, 200);
    let text = String::from_utf8(metrics.body).unwrap();
    let computed = metric_value(&text, "tpi_serve_cells_computed_total").unwrap();
    let cached = metric_value(&text, "tpi_serve_cells_cached_total").unwrap();
    let joined = metric_value(&text, "tpi_serve_cells_joined_total").unwrap();
    let total_fetches: usize = bodies.len() * 4 * 2; // 12 requests x 2 cells
    assert!(
        (computed - unique_cells.len() as f64).abs() < 0.5,
        "each unique cell computed exactly once, got {computed}"
    );
    assert!(
        (cached + joined - (total_fetches - unique_cells.len()) as f64).abs() < 0.5,
        "duplicates must hit the cache or join a flight (cached {cached}, joined {joined})"
    );
    assert!(cached + joined > 0.0, "single-flight must be visible");

    let stats = server.shutdown();
    assert_eq!(stats.cells_computed as usize, unique_cells.len());
    assert_eq!(stats.experiment_requests as usize, bodies.len() * 4);
    assert_eq!(stats.rejected_queue_full, 0);
    assert_eq!(stats.rejected_timeout, 0);
}

#[test]
fn queue_overflow_is_a_503_with_retry_after() {
    // A 3-cell grid cannot fit a capacity-1 queue: all-or-nothing
    // submission refuses the request outright, no timing involved.
    let (server, addr) = start(ServeConfig {
        workers: 1,
        queue_cap: 1,
        ..ServeConfig::default()
    });
    let body = r#"{"kernels":["FLO52","TRFD","QCD2"]}"#;
    let response = post(addr, "/v1/experiments", body, CLIENT_TIMEOUT).unwrap();
    assert_eq!(response.status, 503);
    assert_eq!(response.header("retry-after"), Some("1"));
    let doc = parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
    assert_eq!(
        doc.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("overloaded")
    );

    // A request that fits still succeeds: the refusal cached nothing.
    let ok = post(
        addr,
        "/v1/experiments",
        r#"{"kernels":["FLO52"]}"#,
        CLIENT_TIMEOUT,
    )
    .unwrap();
    assert_eq!(ok.status, 200);

    let stats = server.shutdown();
    assert!(stats.rejected_queue_full >= 1);
}

#[test]
fn a_missed_deadline_is_a_504() {
    let (server, addr) = start(ServeConfig {
        workers: 1,
        request_timeout: Duration::from_millis(50),
        cell_delay: Duration::from_millis(400),
        ..ServeConfig::default()
    });
    let response = post(
        addr,
        "/v1/experiments",
        r#"{"kernels":["FLO52"]}"#,
        CLIENT_TIMEOUT,
    )
    .unwrap();
    assert_eq!(response.status, 504);
    let doc = parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
    assert_eq!(
        doc.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("timeout")
    );
    let stats = server.shutdown();
    assert!(stats.rejected_timeout >= 1);
}

#[test]
fn malformed_bodies_are_structured_400s() {
    let (server, addr) = start(ServeConfig::default());
    for (body, want_code) in [
        ("{not json", "bad_json"),
        ("[1,2,3]", "bad_field"),
        (r#"{"kernels":["NOPE"]}"#, "bad_field"),
        (r#"{"tag_bits":1}"#, "bad_machine"),
    ] {
        let response = post(addr, "/v1/experiments", body, CLIENT_TIMEOUT).unwrap();
        assert_eq!(response.status, 400, "{body}");
        let doc = parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        assert_eq!(
            doc.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some(want_code),
            "{body}"
        );
    }
    let metrics = get(addr, "/metrics", CLIENT_TIMEOUT).unwrap();
    let text = String::from_utf8(metrics.body).unwrap();
    assert!(metric_value(&text, "tpi_serve_bad_requests_total").unwrap() >= 4.0);
    server.shutdown();
}

#[test]
fn discovery_health_and_routing() {
    let (server, addr) = start(ServeConfig::default());

    let kernels = get(addr, "/v1/kernels", CLIENT_TIMEOUT).unwrap();
    assert_eq!(kernels.status, 200);
    let body = String::from_utf8(kernels.body).unwrap();
    assert!(body.contains("FLO52") && body.contains("OCEAN"), "{body}");

    let schemes = get(addr, "/v1/schemes", CLIENT_TIMEOUT).unwrap();
    assert_eq!(schemes.status, 200);
    let body = String::from_utf8(schemes.body).unwrap();
    assert!(body.contains("TPI") && body.contains("HW"), "{body}");
    // Metadata objects, not bare labels: every entry carries the scheme's
    // registry identity and storage cost.
    let doc = parse(&body).unwrap();
    let items = doc.get("schemes").and_then(Json::as_array).unwrap();
    for item in items {
        for field in [
            "id",
            "label",
            "description",
            "paper_main",
            "storage_bits_per_word",
        ] {
            assert!(item.get(field).is_some(), "missing {field}: {body}");
        }
    }
    assert!(
        items
            .iter()
            .any(|s| s.get("id").and_then(Json::as_str) == Some("tardis")),
        "{body}"
    );

    let health = get(addr, "/healthz", CLIENT_TIMEOUT).unwrap();
    assert_eq!(health.status, 200);
    let doc = parse(std::str::from_utf8(&health.body).unwrap()).unwrap();
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
    assert!(doc.get("workers").and_then(Json::as_u64).unwrap() >= 1);

    // Wrong method on a known path vs unknown path.
    assert_eq!(
        get(addr, "/v1/experiments", CLIENT_TIMEOUT).unwrap().status,
        405
    );
    assert_eq!(get(addr, "/nope", CLIENT_TIMEOUT).unwrap().status, 404);

    server.shutdown();
}

/// The `error.code` of a structured error response.
fn error_code(body: &[u8]) -> Option<String> {
    parse(std::str::from_utf8(body).ok()?)
        .ok()?
        .get("error")?
        .get("code")?
        .as_str()
        .map(str::to_owned)
}

#[test]
fn a_panicking_cell_fails_every_waiter_with_a_500_then_recomputes() {
    // Exactly the first computation panics; the artificial delay holds
    // the cell in flight long enough for concurrent identical requests
    // to join the one doomed flight.
    let plan = Arc::new(FaultPlan::parse("seed=1,worker_panic=1@1").unwrap());
    let (server, addr) = start(ServeConfig {
        workers: 1,
        cell_delay: Duration::from_millis(150),
        fault: Some(Arc::clone(&plan)),
        ..ServeConfig::default()
    });
    let body = r#"{"kernels":["FLO52"],"schemes":["TPI"]}"#;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                scope.spawn(move || post(addr, "/v1/experiments", body, CLIENT_TIMEOUT).unwrap())
            })
            .collect();
        for handle in handles {
            let response = handle.join().unwrap();
            assert_eq!(response.status, 500);
            assert_eq!(error_code(&response.body).as_deref(), Some("cell_panicked"));
        }
    });

    // The panic was never cached: the identical request recomputes and
    // serves bytes matching a fresh serial runner.
    let retry = post(addr, "/v1/experiments", body, CLIENT_TIMEOUT).unwrap();
    assert_eq!(retry.status, 200);
    assert_eq!(
        String::from_utf8_lossy(&retry.body),
        expected_response(&Runner::serial(), body)
    );

    let metrics = get(addr, "/metrics", CLIENT_TIMEOUT).unwrap();
    let text = String::from_utf8(metrics.body).unwrap();
    assert!(metric_value(&text, "tpi_cell_panics_total").unwrap() >= 1.0);
    assert!(
        metric_value(&text, "tpi_faults_injected_total{site=\"worker_panic\"}").unwrap() >= 1.0
    );

    let stats = server.shutdown();
    assert!(stats.cell_panics >= 1);
}

#[test]
fn garbage_bytes_get_a_400_or_a_close_and_the_server_survives() {
    use std::io::{Read, Write};
    use std::net::TcpStream;

    let (server, addr) = start(ServeConfig::default());
    let payloads: [&[u8]; 3] = [
        b"THIS IS NOT HTTP\r\n\r\n",
        b"GET /healthz HTTP/1.1\r\ncontent-length: banana\r\n\r\n",
        b"\x00\xff\x00\xff\r\n\r\n",
    ];
    for payload in payloads {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(payload).unwrap();
        let mut raw = Vec::new();
        // The server either answers a structured 400 and closes, or (for
        // byte soup it cannot frame) just closes. It must never hang.
        let _ = stream.read_to_end(&mut raw);
        if !raw.is_empty() {
            let head = String::from_utf8_lossy(&raw);
            assert!(head.starts_with("HTTP/1.1 4"), "{head}");
        }
    }
    // The handler threads died with their connections, not the service:
    // a normal request still works.
    let ok = post(
        addr,
        "/v1/experiments",
        r#"{"kernels":["FLO52"]}"#,
        CLIENT_TIMEOUT,
    )
    .unwrap();
    assert_eq!(ok.status, 200);
    server.shutdown();
}

#[test]
fn the_retry_budget_converges_against_injected_transient_503s() {
    // Exactly the first two experiment handlings are refused with the
    // transient 503; the retrying load generator must absorb both and
    // still bring every request home.
    let plan = Arc::new(FaultPlan::parse("seed=3,overload=1@2").unwrap());
    let (server, addr) = start(ServeConfig {
        workers: 2,
        fault: Some(plan),
        ..ServeConfig::default()
    });
    let report = loadgen::run(&LoadgenConfig {
        addr,
        connections: 1,
        requests_per_connection: 3,
        timeout: CLIENT_TIMEOUT,
        retry: RetryPolicy {
            budget: 4,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(20),
            seed: 3,
        },
    });
    assert_eq!(report.ok, 3, "{report:?}");
    assert_eq!(report.retries, 2, "{report:?}");
    assert_eq!(report.retries_exhausted, 0, "{report:?}");
    assert!(report.non_2xx.is_empty(), "{report:?}");
    // The first request took 3 attempts; the other two took 1.
    assert_eq!(report.attempts_histogram, vec![(1, 2), (3, 1)]);
    server.shutdown();
}

#[test]
fn shutdown_under_load_answers_every_queued_request() {
    // One slow worker that dies (unsupervised, since stop is already
    // requested) right after its first cell: the two cells left in the
    // queue have no worker to drain them, and the waiting request must
    // still get a terminal structured 503 before the final stats line.
    let plan = Arc::new(FaultPlan::parse("seed=5,worker_exit=1@1").unwrap());
    let (server, addr) = start(ServeConfig {
        workers: 1,
        cell_delay: Duration::from_millis(300),
        fault: Some(plan),
        ..ServeConfig::default()
    });
    let client = std::thread::spawn(move || {
        post(
            addr,
            "/v1/experiments",
            r#"{"kernels":["FLO52","TRFD","QCD2"],"schemes":["TPI"]}"#,
            CLIENT_TIMEOUT,
        )
        .unwrap()
    });
    // Let the request get queued and the worker get busy on cell 1.
    std::thread::sleep(Duration::from_millis(100));
    let bye = post(addr, "/admin/shutdown", "", CLIENT_TIMEOUT).unwrap();
    assert_eq!(bye.status, 200);
    let stats = server.shutdown();
    let response = client.join().unwrap();
    assert_eq!(response.status, 503);
    assert_eq!(error_code(&response.body).as_deref(), Some("shutting_down"));
    // The worker died after its first cell and was (correctly) not
    // respawned during shutdown.
    assert_eq!(stats.worker_restarts, 0);
    assert!(stats.cells_computed >= 1);
}

#[test]
fn the_binary_reports_its_ephemeral_port_and_shuts_down_cleanly() {
    use std::io::{BufRead, BufReader};
    use std::process::{Command, Stdio};

    let mut child = Command::new(env!("CARGO_BIN_EXE_tpi-serve"))
        .args(["--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn tpi-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let ready = lines
        .next()
        .expect("a ready line")
        .expect("readable stdout");
    let addr: SocketAddr = ready
        .strip_prefix("tpi-serve listening on http://")
        .unwrap_or_else(|| panic!("unexpected ready line {ready:?}"))
        .parse()
        .expect("a socket address");
    assert_ne!(addr.port(), 0);

    let health = get(addr, "/healthz", CLIENT_TIMEOUT).unwrap();
    assert_eq!(health.status, 200);
    let bye = post(addr, "/admin/shutdown", "", CLIENT_TIMEOUT).unwrap();
    assert_eq!(bye.status, 200);
    let status = child.wait().expect("process exits");
    assert!(status.success(), "{status:?}");
}
