//! Zero-dependency testing support for the offline workspace.
//!
//! The workspace builds in environments with no crates.io access, so it
//! cannot depend on `proptest` or `criterion`. This crate supplies the
//! small subset of both that the repository actually uses:
//!
//! * a deterministic property-testing harness whose surface mirrors
//!   `proptest` (the [`proptest!`] macro, [`Strategy`], ranges and tuples
//!   as strategies, [`prop_oneof!`], `prop::collection::vec`, …), so the
//!   property suites read exactly as they would under the real crate, and
//! * a wall-clock micro-benchmark harness ([`mod@bench`]) for the
//!   `harness = false` bench targets, and
//! * bounded exhaustive enumeration helpers ([`mod@exhaustive`]) for
//!   tools that sweep every small structure instead of sampling.
//!
//! Generation is seeded from the test's module path and case index, so
//! every run of every machine explores the same inputs — reproducible
//! failures without a persisted regression file.

#![warn(missing_docs)]

pub mod bench;
pub mod exhaustive;
mod rng;
mod strategy;

pub use rng::{splitmix64, Rng};
pub use strategy::{
    any, Any, ArbitraryValue, BoxedStrategy, Just, Map, OptionStrategy, Strategy, Union,
    VecStrategy, Weighted,
};

/// Assertion failure carried out of a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a rendered failure message.
    #[must_use]
    pub fn new(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Property-test run configuration (the `proptest` name is kept so test
/// files read identically under either harness).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Namespaced strategy constructors, mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{Strategy, VecStrategy};

        /// A `Vec` whose length is drawn from `len` and whose elements
        /// come from `element`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy::new(element, len)
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::Weighted;

        /// `true` with probability `p`.
        #[must_use]
        pub fn weighted(p: f64) -> Weighted {
            Weighted::new(p)
        }
    }

    /// `Option` strategies.
    pub mod option {
        use crate::strategy::{OptionStrategy, Strategy};

        /// `Some` of the inner strategy three times out of four, `None`
        /// otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy::new(inner)
        }
    }
}

/// Everything a property-test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Fails the enclosing property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!($($fmt)+)));
        }
    };
}

/// Fails the enclosing property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Picks one of several strategies, optionally weighted
/// (`weight => strategy`). All arms must share one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// Declares deterministic property tests.
///
/// The attribute is normally `#[test]`; the example uses `#[allow(unused)]`
/// only because doctests never execute unit tests.
///
/// ```
/// use tpi_testkit::prelude::*;
///
/// proptest! {
///     #[allow(unused)]
///     fn addition_commutes(a in 0i64..100, b in 0i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])+
     fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            // Real proptest configs have more fields, so call sites spell
            // `..ProptestConfig::default()` even though ours has only one.
            #[allow(clippy::needless_update)]
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::Rng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    u64::from(case),
                );
                $(let $arg = $crate::Strategy::gen(&($strat), &mut rng);)+
                // The closure gives `prop_assert!` an early-return target.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in -7i64..9, w in 3u32..17) {
            prop_assert!((-7..9).contains(&v));
            prop_assert!((3..17).contains(&w));
        }

        #[test]
        fn vec_lengths_respect_range(xs in prop::collection::vec(0u8..10, 2..6)) {
            prop_assert!((2..6).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&x| x < 10), "{xs:?}");
        }

        #[test]
        fn oneof_covers_only_listed_arms(
            x in prop_oneof![Just(1u32), Just(2), (10u32..12).prop_map(|v| v)],
        ) {
            prop_assert!([1, 2, 10, 11].contains(&x), "unexpected {x}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

        #[test]
        fn config_attribute_is_honored(seed in any::<u64>()) {
            // Five cases only; the body just has to run.
            let _ = seed;
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec(0u64..1000, 3..9);
        let a = Strategy::gen(&strat, &mut crate::Rng::for_case("det", 7));
        let b = Strategy::gen(&strat, &mut crate::Rng::for_case("det", 7));
        let c = Strategy::gen(&strat, &mut crate::Rng::for_case("det", 8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
