//! A small wall-clock benchmark harness for `harness = false` bench
//! targets, usable where `criterion` cannot be downloaded.
//!
//! ```no_run
//! use tpi_testkit::bench::Harness;
//!
//! let mut harness = Harness::from_args();
//! let mut group = harness.group("sums");
//! group.bench_function("1..=100", |b| b.iter(|| (1u64..=100).sum::<u64>()));
//! ```
//!
//! The harness understands the arguments `cargo bench` forwards: `--test`
//! runs every benchmark exactly once (smoke mode, what CI uses), other
//! flags are ignored, and a bare argument filters benchmarks by substring
//! of `group/name`.

use std::time::{Duration, Instant};

/// How long each benchmark samples in measurement mode.
const BUDGET: Duration = Duration::from_millis(200);
/// Iteration cap so trivially fast bodies still terminate promptly.
const MAX_ITERS: u64 = 100_000;

/// Top-level benchmark runner; parses CLI arguments once.
#[derive(Debug, Clone)]
pub struct Harness {
    filter: Option<String>,
    smoke: bool,
}

impl Harness {
    /// A harness configured from the process arguments.
    #[must_use]
    pub fn from_args() -> Self {
        let mut filter = None;
        let mut smoke = false;
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--test" => smoke = true,
                s if s.starts_with('-') => {} // --bench etc.: ignore
                s => filter = Some(s.to_owned()),
            }
        }
        Harness { filter, smoke }
    }

    /// Starts a named group of benchmarks.
    #[must_use]
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_owned(),
        }
    }
}

/// A named group; benchmark ids render as `group/name`.
#[derive(Debug)]
pub struct Group<'h> {
    harness: &'h mut Harness,
    name: String,
}

impl Group<'_> {
    /// Measures `f` (skipped when a CLI filter excludes it).
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{id}", self.name);
        if let Some(filter) = &self.harness.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut f = f;
        let mut b = Bencher {
            smoke: self.harness.smoke,
            iters: 0,
            total: Duration::ZERO,
        };
        f(&mut b);
        if self.harness.smoke {
            println!("{full}: ok (smoke)");
        } else if b.iters == 0 {
            println!("{full}: no measurement (Bencher::iter never called)");
        } else {
            let per = b.total.as_nanos() / u128::from(b.iters);
            println!(
                "{full}: {} ({} iters in {:.2?})",
                format_ns(per),
                b.iters,
                b.total
            );
        }
    }
}

/// Passed to each benchmark body; call [`Bencher::iter`] with the code
/// under measurement.
#[derive(Debug)]
pub struct Bencher {
    smoke: bool,
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly under the timing budget (once in smoke mode)
    /// and records the per-iteration cost.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        if self.smoke {
            std::hint::black_box(f());
            self.iters = 1;
            self.total = Duration::from_nanos(1);
            return;
        }
        // Warm-up pass (also seeds lazy state so it isn't measured).
        std::hint::black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(f());
            iters += 1;
            if iters >= MAX_ITERS || start.elapsed() >= BUDGET {
                break;
            }
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s/iter", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms/iter", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs/iter", ns as f64 / 1e3)
    } else {
        format!("{ns} ns/iter")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_exactly_once() {
        let mut harness = Harness {
            filter: None,
            smoke: true,
        };
        let mut calls = 0u32;
        harness.group("g").bench_function("f", |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut harness = Harness {
            filter: Some("other".into()),
            smoke: true,
        };
        let mut calls = 0u32;
        harness.group("g").bench_function("f", |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, 0);
    }

    #[test]
    fn units_format_sensibly() {
        assert_eq!(format_ns(12), "12 ns/iter");
        assert_eq!(format_ns(1_500), "1.500 µs/iter");
        assert_eq!(format_ns(2_500_000), "2.500 ms/iter");
        assert_eq!(format_ns(3_000_000_000), "3.000 s/iter");
    }
}
