//! Deterministic pseudo-random generation (splitmix64).

/// The [SplitMix64](https://prng.di.unimi.it/splitmix64.c) step: advances
/// `x` by the golden-ratio increment and applies the standard 64-bit
/// finalizer. A bijective hash good enough to turn structured inputs
/// (seed, site, index) into an i.i.d.-looking stream.
///
/// This is the single SplitMix64 in the workspace: [`Rng`] iterates it
/// for sequential generation, and `tpi-serve` hashes with it directly for
/// interleaving-independent fault-injection and backoff-jitter decisions.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A small, fast, deterministic PRNG.
///
/// Splitmix64 passes the statistical tests that matter for test-input
/// generation and needs no external crates.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator seeded directly.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Rng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The generator for one property-test case: seeded from the test's
    /// identity and the case index, so runs are reproducible everywhere.
    #[must_use]
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Rng::new(h ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let out = splitmix64(self.state);
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        out
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Widening-multiply range reduction (Lemire); the slight bias at
        // 2^64 scale is irrelevant for test generation.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_is_in_range_and_reaches_both_ends() {
        let mut rng = Rng::new(1);
        let mut seen0 = false;
        let mut seen9 = false;
        for _ in 0..10_000 {
            let v = rng.below(10);
            assert!(v < 10);
            seen0 |= v == 0;
            seen9 |= v == 9;
        }
        assert!(seen0 && seen9);
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = Rng::new(2);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn rng_stream_is_the_iterated_finalizer() {
        // `Rng` must stay byte-identical to hand-iterated `splitmix64`
        // so seeded corpora and fault plans never drift apart.
        let seed = 0xDEAD_BEEF_u64;
        let mut rng = Rng::new(seed);
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        for _ in 0..64 {
            assert_eq!(rng.next_u64(), splitmix64(state));
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[test]
    fn splitmix64_known_answer() {
        // First three outputs of the reference splitmix64.c with seed 0.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        let s = 0x9E37_79B9_7F4A_7C15u64;
        assert_eq!(splitmix64(s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(s.wrapping_mul(2)), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn case_seeds_differ_by_test_and_case() {
        let a = Rng::for_case("x", 0).next_u64();
        let b = Rng::for_case("x", 1).next_u64();
        let c = Rng::for_case("y", 0).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
