//! The [`Strategy`] trait and the combinators the test suites use.

use crate::rng::Rng;

/// A recipe for generating values of one type.
///
/// The subset of `proptest`'s trait that the workspace needs: generation
/// only, no shrinking (failing cases are reproducible from the seed
/// instead).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn gen(&self, rng: &mut Rng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed to mix arm types in
    /// [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn gen(&self, rng: &mut Rng) -> V {
        (**self).gen(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn gen(&self, rng: &mut Rng) -> S::Value {
        (**self).gen(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`]'s strategy.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn gen(&self, rng: &mut Rng) -> U {
        (self.f)(self.inner.gen(rng))
    }
}

/// Weighted choice between boxed strategies ([`prop_oneof!`](crate::prop_oneof)).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V> Union<V> {
    /// A union of `(weight, strategy)` arms; weights must not all be zero.
    #[must_use]
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(
            arms.iter().any(|(w, _)| *w > 0),
            "prop_oneof! needs at least one positive weight"
        );
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn gen(&self, rng: &mut Rng) -> V {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.gen(rng);
            }
            pick -= w;
        }
        unreachable!("weights covered the whole range")
    }
}

/// `Vec` strategy (`prop::collection::vec`).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: std::ops::Range<usize>,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, len: std::ops::Range<usize>) -> Self {
        assert!(!len.is_empty(), "empty length range");
        VecStrategy { element, len }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen(&self, rng: &mut Rng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.gen(rng)).collect()
    }
}

/// Weighted boolean strategy (`prop::bool::weighted`).
#[derive(Debug, Clone)]
pub struct Weighted {
    p: f64,
}

impl Weighted {
    pub(crate) fn new(p: f64) -> Self {
        Weighted { p }
    }
}

impl Strategy for Weighted {
    type Value = bool;

    fn gen(&self, rng: &mut Rng) -> bool {
        rng.next_f64() < self.p
    }
}

/// `Option` strategy (`prop::option::of`).
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> OptionStrategy<S> {
    pub(crate) fn new(inner: S) -> Self {
        OptionStrategy { inner }
    }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn gen(&self, rng: &mut Rng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.gen(rng))
        }
    }
}

/// Types with a canonical full-range strategy ([`any`]).
pub trait ArbitraryValue: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut Rng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The full-range strategy for `T` (`any::<u64>()`, `any::<bool>()`, …).
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn gen(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained strategy for `T`.
#[must_use]
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn gen(&self, rng: &mut Rng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                let span = (hi - lo) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn gen(&self, rng: &mut Rng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn gen(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.gen(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_ranges_cover_negative_values() {
        let mut rng = Rng::new(3);
        let mut saw_negative = false;
        for _ in 0..200 {
            let v = (-5i64..5).gen(&mut rng);
            assert!((-5..5).contains(&v));
            saw_negative |= v < 0;
        }
        assert!(saw_negative);
    }

    #[test]
    fn union_respects_zero_weight() {
        let u = Union::new(vec![(0, Just(1u8).boxed()), (3, Just(2u8).boxed())]);
        let mut rng = Rng::new(4);
        for _ in 0..100 {
            assert_eq!(u.gen(&mut rng), 2);
        }
    }

    #[test]
    fn tuples_and_maps_compose() {
        let s = (0u32..4, (-3i64..3).prop_map(|v| v * 2)).prop_map(|(a, b)| i64::from(a) + b);
        let mut rng = Rng::new(5);
        for _ in 0..100 {
            let v = s.gen(&mut rng);
            assert!((-6..=9).contains(&v), "{v}");
        }
    }
}
