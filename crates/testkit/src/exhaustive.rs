//! Exhaustive bounded enumeration, for tools that sweep *every* small
//! structure instead of sampling (the `tpi-model` checker enumerates all
//! per-processor access programs up to a depth bound with these).
//!
//! Everything here is deliberately generic and allocation-simple: the
//! structures being enumerated are tiny (a handful of slots over a
//! handful of options), so clarity beats cleverness.

/// All sequences over `alphabet` of length `0..=max_len`, shortest first,
/// in lexicographic order of alphabet indices within each length.
///
/// The count is `Σ_{k=0..=max_len} |alphabet|^k`; keep both small.
pub fn sequences<T: Clone>(alphabet: &[T], max_len: usize) -> Vec<Vec<T>> {
    let mut out: Vec<Vec<T>> = vec![Vec::new()];
    let mut frontier: Vec<Vec<T>> = vec![Vec::new()];
    for _ in 0..max_len {
        let mut next = Vec::with_capacity(frontier.len() * alphabet.len());
        for seq in &frontier {
            for sym in alphabet {
                let mut longer = seq.clone();
                longer.push(sym.clone());
                next.push(longer);
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

/// The cartesian power: every way to fill `slots` positions from
/// `options` (count `|options|^slots`), in lexicographic order.
pub fn assignments<T: Clone>(slots: usize, options: &[T]) -> Vec<Vec<T>> {
    let mut out: Vec<Vec<T>> = vec![Vec::new()];
    for _ in 0..slots {
        let mut next = Vec::with_capacity(out.len() * options.len());
        for partial in &out {
            for opt in options {
                let mut longer = partial.clone();
                longer.push(opt.clone());
                next.push(longer);
            }
        }
        out = next;
    }
    out
}

/// Deduplicates `items` under a canonicalization function: an item is
/// kept only if it is the first to map to its canonical form. Use to
/// quotient an enumeration by a symmetry (e.g. processor permutation).
/// Returns the survivors and the number dropped.
pub fn canonical_subset<T, K: Ord>(items: Vec<T>, canon: impl Fn(&T) -> K) -> (Vec<T>, usize) {
    let mut seen = std::collections::BTreeSet::new();
    let before = items.len();
    let kept: Vec<T> = items
        .into_iter()
        .filter(|it| seen.insert(canon(it)))
        .collect();
    let dropped = before - kept.len();
    (kept, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_counts_sum_of_powers() {
        // 2 symbols up to length 3: 1 + 2 + 4 + 8 = 15.
        let seqs = sequences(&[0u8, 1], 3);
        assert_eq!(seqs.len(), 15);
        assert_eq!(seqs[0], Vec::<u8>::new());
        assert!(seqs.contains(&vec![1, 0, 1]));
        // Zero-length bound: only the empty sequence.
        assert_eq!(sequences(&[0u8, 1], 0).len(), 1);
    }

    #[test]
    fn assignments_is_cartesian_power() {
        let all = assignments(3, &['a', 'b']);
        assert_eq!(all.len(), 8);
        assert_eq!(all[0], vec!['a', 'a', 'a']);
        assert_eq!(all[7], vec!['b', 'b', 'b']);
        // Zero slots: one empty assignment.
        assert_eq!(assignments(0, &['a']).len(), 1);
    }

    #[test]
    fn canonical_subset_quotients_by_symmetry() {
        // Pairs up to swap symmetry: (a,b) ~ (b,a).
        let pairs = vec![(1, 2), (2, 1), (3, 3), (1, 2)];
        let (kept, dropped) = canonical_subset(pairs, |&(a, b): &(i32, i32)| (a.min(b), a.max(b)));
        assert_eq!(kept, vec![(1, 2), (3, 3)]);
        assert_eq!(dropped, 2);
    }
}
