//! Criterion benches: one group per paper table/figure, at test scale.
//!
//! `cargo bench -p tpi-bench --bench experiments` regenerates every
//! experiment's code path under the measurement harness; the `repro`
//! binary produces the full paper-scale tables. (Criterion measures the
//! harness's own runtime — useful to track simulator performance — while
//! the experiment *results* are printed by `repro`.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use tpi_bench::run_experiment;
use tpi_workloads::Scale;

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    // Simulation experiments are heavy even at test scale; keep sampling
    // modest so `cargo bench` finishes promptly.
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for id in tpi_bench::ALL_IDS {
        group.bench_function(id, |b| {
            b.iter(|| {
                let out = run_experiment(black_box(id), Scale::Test).expect("known id");
                black_box(out.tables.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
