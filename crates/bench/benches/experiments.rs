//! Benches: one measurement per paper table/figure, at test scale.
//!
//! `cargo bench -p tpi-bench --bench experiments` regenerates every
//! experiment's code path under the measurement harness; the `repro`
//! binary produces the full paper-scale tables. (The harness measures the
//! experiment's own runtime — useful to track simulator and runner
//! performance — while the experiment *results* are printed by `repro`.)
//!
//! Each iteration constructs a fresh [`tpi::Runner`] so the measurement
//! includes trace generation, not just memoized replay.

use std::hint::black_box;
use tpi::Runner;
use tpi_bench::run_experiment;
use tpi_testkit::bench::Harness;
use tpi_workloads::Scale;

fn main() {
    let mut harness = Harness::from_args();
    let mut group = harness.group("experiments");
    for id in tpi_bench::ALL_IDS {
        group.bench_function(id, |b| {
            b.iter(|| {
                let runner = Runner::new();
                let out = run_experiment(black_box(id), Scale::Test, &runner).expect("known id");
                black_box(out.tables.len())
            });
        });
    }
}
