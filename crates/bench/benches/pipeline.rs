//! Criterion benches for the individual pipeline stages: compiler marking,
//! trace generation, and each coherence engine's replay throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use tpi::ExperimentConfig;
use tpi_compiler::{mark_program, CompilerOptions};
use tpi_proto::{build_engine, SchemeKind};
use tpi_sim::run_trace;
use tpi_trace::generate_trace;
use tpi_workloads::{Kernel, Scale};

fn bench_marking(c: &mut Criterion) {
    let mut group = c.benchmark_group("compiler-marking");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for kernel in Kernel::ALL {
        let program = kernel.build(Scale::Test);
        group.bench_function(kernel.name(), |b| {
            b.iter(|| {
                let m = mark_program(black_box(&program), &CompilerOptions::default());
                black_box(m.summary().shared_reads)
            });
        });
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let cfg = ExperimentConfig::paper();
    let mut group = c.benchmark_group("trace-generation");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for kernel in [Kernel::Flo52, Kernel::Qcd2] {
        let program = kernel.build(Scale::Test);
        let marking = mark_program(&program, &cfg.compiler_options());
        group.bench_function(kernel.name(), |b| {
            b.iter(|| {
                let t = generate_trace(black_box(&program), &marking, &cfg.trace_options())
                    .expect("race-free");
                black_box(t.stats.reads)
            });
        });
    }
    group.finish();
}

fn bench_engines(c: &mut Criterion) {
    let cfg = ExperimentConfig::paper();
    let program = Kernel::Flo52.build(Scale::Test);
    let marking = mark_program(&program, &cfg.compiler_options());
    let trace = generate_trace(&program, &marking, &cfg.trace_options()).expect("race-free");
    let mut group = c.benchmark_group("engine-replay");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for scheme in SchemeKind::MAIN {
        group.bench_function(scheme.label(), |b| {
            b.iter(|| {
                let mut engine =
                    build_engine(scheme, cfg.engine_config(trace.layout.total_words()));
                let r = run_trace(black_box(&trace), engine.as_mut(), &cfg.sim_options());
                black_box(r.total_cycles)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_marking,
    bench_trace_generation,
    bench_engines
);
criterion_main!(benches);
