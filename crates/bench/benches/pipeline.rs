//! Benches for the individual pipeline stages: compiler marking, trace
//! generation, and each coherence engine's replay throughput.
//!
//! Runs under the offline `tpi_testkit::bench` harness; `cargo bench -p
//! tpi-bench --bench pipeline -- --test` smoke-runs every body once.

use std::hint::black_box;
use tpi::ExperimentConfig;
use tpi_compiler::{mark_program, CompilerOptions};
use tpi_proto::{build_engine, registry};
use tpi_sim::run_trace;
use tpi_testkit::bench::Harness;
use tpi_trace::generate_trace;
use tpi_workloads::{Kernel, Scale};

fn bench_marking(harness: &mut Harness) {
    let mut group = harness.group("compiler-marking");
    for kernel in Kernel::ALL {
        let program = kernel.build(Scale::Test);
        group.bench_function(kernel.name(), |b| {
            b.iter(|| {
                let m = mark_program(black_box(&program), &CompilerOptions::default());
                black_box(m.summary().shared_reads)
            });
        });
    }
}

fn bench_trace_generation(harness: &mut Harness) {
    let cfg = ExperimentConfig::paper();
    let mut group = harness.group("trace-generation");
    for kernel in [Kernel::Flo52, Kernel::Qcd2] {
        let program = kernel.build(Scale::Test);
        let marking = mark_program(&program, &cfg.compiler_options());
        group.bench_function(kernel.name(), |b| {
            b.iter(|| {
                let t = generate_trace(black_box(&program), &marking, &cfg.trace_options())
                    .expect("race-free");
                black_box(t.stats.reads)
            });
        });
    }
}

fn bench_engines(harness: &mut Harness) {
    let cfg = ExperimentConfig::paper();
    let program = Kernel::Flo52.build(Scale::Test);
    let marking = mark_program(&program, &cfg.compiler_options());
    let trace = generate_trace(&program, &marking, &cfg.trace_options()).expect("race-free");
    let mut group = harness.group("engine-replay");
    for scheme in registry::global().main_schemes() {
        group.bench_function(scheme.label(), |b| {
            b.iter(|| {
                let mut engine =
                    build_engine(scheme, cfg.engine_config(trace.layout.total_words()));
                let r = run_trace(black_box(&trace), engine.as_mut(), &cfg.sim_options());
                black_box(r.total_cycles)
            });
        });
    }
}

fn main() {
    let mut harness = Harness::from_args();
    bench_marking(&mut harness);
    bench_trace_generation(&mut harness);
    bench_engines(&mut harness);
}
