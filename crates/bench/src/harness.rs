//! Shared plumbing for the experiment implementations.

use tpi::{run_kernel, ExperimentConfig, ExperimentResult, Runner};
use tpi_proto::{registry, SchemeId};
use tpi_workloads::{Kernel, Scale};

/// Runs `kernel` under `cfg` with no memoization — the reference path the
/// [`Runner`]-based experiments are checked against. Panics on the
/// (impossible for the shipped kernels) race error so experiment code
/// stays declarative.
///
/// # Panics
///
/// Panics if the kernel traces with a race (a bug in the suite).
#[must_use]
pub fn run(kernel: Kernel, scale: Scale, cfg: &ExperimentConfig) -> ExperimentResult {
    run_kernel(kernel, scale, cfg).unwrap_or_else(|e| panic!("{kernel}: {e}"))
}

/// The paper configuration with the scheme swapped.
#[must_use]
pub fn cfg_for(scheme: impl Into<SchemeId>) -> ExperimentConfig {
    ExperimentConfig::builder()
        .scheme(scheme)
        .build()
        .expect("the paper machine is valid")
}

/// The paper's main comparison schemes, in registry order.
#[must_use]
pub fn main_schemes() -> Vec<SchemeId> {
    registry::global().main_schemes()
}

/// Runs every benchmark under every main scheme on `runner`; yields
/// `(kernel, scheme, result)` in a deterministic order.
///
/// # Panics
///
/// Panics if any kernel traces with a race (a bug in the suite).
#[must_use]
pub fn full_matrix(scale: Scale, runner: &Runner) -> Vec<(Kernel, SchemeId, ExperimentResult)> {
    let main = main_schemes();
    let grid = runner
        .grid()
        .kernels(Kernel::ALL)
        .scale(scale)
        .schemes(main.iter().copied())
        .run()
        .expect("the suite is race-free");
    let mut out = Vec::new();
    for kernel in Kernel::ALL {
        for &scheme in &main {
            out.push((kernel, scheme, grid.get(kernel, scheme).clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_for_swaps_scheme_only() {
        let c = cfg_for(SchemeId::SC);
        assert_eq!(c.scheme, SchemeId::SC);
        assert_eq!(c.procs, ExperimentConfig::paper().procs);
    }

    #[test]
    fn main_schemes_are_the_paper_four() {
        let labels: Vec<&str> = main_schemes().iter().map(|s| s.label()).collect();
        assert_eq!(labels, ["BASE", "SC", "TPI", "HW"]);
    }

    #[test]
    fn single_run_works() {
        let r = run(Kernel::Ocean, Scale::Test, &cfg_for(SchemeId::TPI));
        assert!(r.sim.total_cycles > 0);
    }

    #[test]
    fn full_matrix_matches_fresh_runs() {
        let runner = Runner::new();
        let matrix = full_matrix(Scale::Test, &runner);
        assert_eq!(matrix.len(), 24);
        let (kernel, scheme, memoized) = &matrix[5];
        let fresh = run(*kernel, Scale::Test, &cfg_for(*scheme));
        assert_eq!(memoized.sim.total_cycles, fresh.sim.total_cycles);
        assert_eq!(memoized.sim.agg, fresh.sim.agg);
    }
}
