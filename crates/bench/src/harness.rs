//! Shared plumbing for the experiment implementations.

use tpi::{run_kernel, ExperimentConfig, ExperimentResult, Runner};
use tpi_proto::SchemeKind;
use tpi_workloads::{Kernel, Scale};

/// Runs `kernel` under `cfg` with no memoization — the reference path the
/// [`Runner`]-based experiments are checked against. Panics on the
/// (impossible for the shipped kernels) race error so experiment code
/// stays declarative.
///
/// # Panics
///
/// Panics if the kernel traces with a race (a bug in the suite).
#[must_use]
pub fn run(kernel: Kernel, scale: Scale, cfg: &ExperimentConfig) -> ExperimentResult {
    run_kernel(kernel, scale, cfg).unwrap_or_else(|e| panic!("{kernel}: {e}"))
}

/// The paper configuration with the scheme swapped.
#[must_use]
pub fn cfg_for(scheme: SchemeKind) -> ExperimentConfig {
    ExperimentConfig::builder()
        .scheme(scheme)
        .build()
        .expect("the paper machine is valid")
}

/// Runs every benchmark under every main scheme on `runner`; yields
/// `(kernel, scheme, result)` in a deterministic order.
///
/// # Panics
///
/// Panics if any kernel traces with a race (a bug in the suite).
#[must_use]
pub fn full_matrix(scale: Scale, runner: &Runner) -> Vec<(Kernel, SchemeKind, ExperimentResult)> {
    let grid = runner
        .grid()
        .kernels(Kernel::ALL)
        .scale(scale)
        .schemes(SchemeKind::MAIN)
        .run()
        .expect("the suite is race-free");
    let mut out = Vec::new();
    for kernel in Kernel::ALL {
        for scheme in SchemeKind::MAIN {
            out.push((kernel, scheme, grid.get(kernel, scheme).clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_for_swaps_scheme_only() {
        let c = cfg_for(SchemeKind::Sc);
        assert_eq!(c.scheme, SchemeKind::Sc);
        assert_eq!(c.procs, ExperimentConfig::paper().procs);
    }

    #[test]
    fn single_run_works() {
        let r = run(Kernel::Ocean, Scale::Test, &cfg_for(SchemeKind::Tpi));
        assert!(r.sim.total_cycles > 0);
    }

    #[test]
    fn full_matrix_matches_fresh_runs() {
        let runner = Runner::new();
        let matrix = full_matrix(Scale::Test, &runner);
        assert_eq!(matrix.len(), 24);
        let (kernel, scheme, memoized) = &matrix[5];
        let fresh = run(*kernel, Scale::Test, &cfg_for(*scheme));
        assert_eq!(memoized.sim.total_cycles, fresh.sim.total_cycles);
        assert_eq!(memoized.sim.agg, fresh.sim.agg);
    }
}
