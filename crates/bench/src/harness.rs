//! Shared plumbing for the experiment implementations.

use tpi::{run_kernel, ExperimentConfig, ExperimentResult};
use tpi_proto::SchemeKind;
use tpi_workloads::{Kernel, Scale};

/// Runs `kernel` under `cfg`, panicking on the (impossible for the shipped
/// kernels) race error so experiment code stays declarative.
///
/// # Panics
///
/// Panics if the kernel traces with a race (a bug in the suite).
#[must_use]
pub fn run(kernel: Kernel, scale: Scale, cfg: &ExperimentConfig) -> ExperimentResult {
    run_kernel(kernel, scale, cfg).unwrap_or_else(|e| panic!("{kernel}: {e}"))
}

/// The paper configuration with the scheme swapped.
#[must_use]
pub fn cfg_for(scheme: SchemeKind) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper();
    cfg.scheme = scheme;
    cfg
}

/// Runs every benchmark under every main scheme; yields
/// `(kernel, scheme, result)` in a deterministic order.
#[must_use]
pub fn full_matrix(scale: Scale) -> Vec<(Kernel, SchemeKind, ExperimentResult)> {
    let mut out = Vec::new();
    for kernel in Kernel::ALL {
        for scheme in SchemeKind::MAIN {
            let r = run(kernel, scale, &cfg_for(scheme));
            out.push((kernel, scheme, r));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_for_swaps_scheme_only() {
        let c = cfg_for(SchemeKind::Sc);
        assert_eq!(c.scheme, SchemeKind::Sc);
        assert_eq!(c.procs, ExperimentConfig::paper().procs);
    }

    #[test]
    fn single_run_works() {
        let r = run(Kernel::Ocean, Scale::Test, &cfg_for(SchemeKind::Tpi));
        assert!(r.sim.total_cycles > 0);
    }
}
