//! The experiment implementations, one per table/figure of the paper.
//!
//! Every simulated experiment declares its whole grid of runs up front and
//! executes it through a [`Runner`], so programs, markings, and traces are
//! built once and shared across schemes and sweep points, and independent
//! cells simulate in parallel. Results are identical to running each cell
//! fresh and serially (see `tests/runner_equivalence.rs`).

use tpi::tables::{f, pct, BarChart, Table};
use tpi::{ExperimentConfig, Runner};
use tpi_cache::{ResetStrategy, WriteBufferKind};
use tpi_compiler::OptLevel;
use tpi_net::TrafficClass;
use tpi_proto::storage::{
    full_map, limitless_as_tabulated, limitless_pointer_width, tpi as tpi_storage, StorageParams,
};
use tpi_proto::{MissClass, SchemeId};
use tpi_trace::SchedulePolicy;
use tpi_workloads::{Kernel, Scale};

use crate::harness::main_schemes;

/// All experiment ids, in presentation order.
pub const ALL_IDS: [&str; 22] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e20", "e21", "e22",
];

/// The rendered output of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Experiment id (`e1`..`e20`).
    pub id: &'static str,
    /// What it reproduces.
    pub title: &'static str,
    /// Rendered tables.
    pub tables: Vec<Table>,
    /// Figure-style bar charts.
    pub charts: Vec<BarChart>,
}

impl std::fmt::Display for ExperimentOutput {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(out, "=== {} — {} ===", self.id, self.title)?;
        for t in &self.tables {
            writeln!(out, "{t}")?;
        }
        for c in &self.charts {
            writeln!(out, "{c}")?;
        }
        Ok(())
    }
}

/// Runs the experiment with the given id at `scale` on `runner`; `None`
/// for unknown ids. Sharing one runner across experiments lets later ones
/// reuse the traces earlier ones generated.
#[must_use]
pub fn run_experiment(id: &str, scale: Scale, runner: &Runner) -> Option<ExperimentOutput> {
    Some(match id {
        "e1" => e1_storage(),
        "e2" => e2_parameters(),
        "e3" => e3_miss_rates(scale, runner),
        "e4" => e4_miss_classes(scale, runner),
        "e5" => e5_miss_latency(scale, runner),
        "e6" => e6_traffic(scale, runner),
        "e7" => e7_exec_time(scale, runner),
        "e8" => e8_timetag_bits(scale, runner),
        "e9" => e9_line_size(scale, runner),
        "e10" => e10_cache_size(scale, runner),
        "e11" => e11_reset_ablation(scale, runner),
        "e12" => e12_write_buffer(scale, runner),
        "e13" => e13_scheduling(scale, runner),
        "e14" => e14_scaling(scale, runner),
        "e15" => e15_opt_levels(scale, runner),
        "e16" => e16_critical_sections(scale, runner),
        "e17" => e17_restamp_ablation(scale, runner),
        "e18" => e18_write_policy(scale, runner),
        "e19" => e19_coherence_overhead(scale, runner),
        "e20" => e20_doacross(scale, runner),
        "e21" => e21_two_level(scale, runner),
        "e22" => e22_fetch_granularity(scale, runner),
        _ => return None,
    })
}

/// E1 / Figure 5: storage overhead of full-map, LimitLess and TPI.
#[must_use]
pub fn e1_storage() -> ExperimentOutput {
    let p = StorageParams::paper_figure5();
    let mut t = Table::new(
        "Figure 5 — bookkeeping storage at P=1024, C=16K lines, L=4 words, M=512K blocks, i=10, b=8",
    );
    t.headers(["scheme", "SRAM (MiB)", "DRAM (GiB)"]);
    for (name, o) in [
        ("full-map directory", full_map(p)),
        (
            "LimitLess (i+2 per block, as tabulated)",
            limitless_as_tabulated(p),
        ),
        (
            "LimitLess (i*log2(P)+2 per block)",
            limitless_pointer_width(p),
        ),
        ("TPI (two-phase invalidation)", tpi_storage(p)),
    ] {
        t.row([name.to_string(), f(o.sram_mib(), 2), f(o.dram_gib(), 2)]);
    }
    let mut scaling = Table::new("Directory DRAM grows as O(P^2); TPI SRAM as O(P)");
    scaling.headers(["P", "full-map DRAM (GiB)", "TPI SRAM (MiB)"]);
    for procs in [64u64, 256, 1024, 4096] {
        let mut pp = p;
        pp.processors = procs;
        scaling.row([
            procs.to_string(),
            f(full_map(pp).dram_gib(), 2),
            f(tpi_storage(pp).sram_mib(), 2),
        ]);
    }
    ExperimentOutput {
        charts: Vec::new(),
        id: "e1",
        title: "storage overhead (Figure 5)",
        tables: vec![t, scaling],
    }
}

/// E2 / Figure 8: the simulated machine's parameters.
#[must_use]
pub fn e2_parameters() -> ExperimentOutput {
    let c = ExperimentConfig::paper();
    let e = c.engine_config(0);
    let mut t = Table::new("Figure 8 — simulation parameters");
    t.headers(["parameter", "value"]);
    t.row([
        "CPU".to_string(),
        "single-issue, 1 cycle/ALU op".to_string(),
    ]);
    t.row(["processors".to_string(), c.procs.to_string()]);
    t.row([
        "cache size".to_string(),
        format!("{} KB, {}-way", c.cache_bytes / 1024, c.assoc),
    ]);
    t.row([
        "line size".to_string(),
        format!("{} 32-bit words", c.line_words),
    ]);
    t.row(["cache hit".to_string(), "1 CPU cycle".to_string()]);
    t.row([
        "line base miss latency".to_string(),
        format!(
            "{} CPU cycles",
            tpi_net::Network::new(e.net).line_fetch(c.line_words)
        ),
    ]);
    t.row(["timetag size".to_string(), format!("{} bits", c.tag_bits)]);
    t.row([
        "two-phase reset".to_string(),
        format!("{} cycles", c.reset_cycles),
    ]);
    t.row([
        "network".to_string(),
        format!(
            "Kruskal-Snir multistage, {} stages of {}x{} switches",
            e.net.stages(),
            e.net.switch_degree,
            e.net.switch_degree
        ),
    ]);
    t.row([
        "epoch setup/barrier".to_string(),
        format!("{} cycles", c.epoch_setup_cycles),
    ]);
    t.row([
        "consistency".to_string(),
        "weak (infinite write buffer)".to_string(),
    ]);
    ExperimentOutput {
        charts: Vec::new(),
        id: "e2",
        title: "simulation parameters (Figure 8)",
        tables: vec![t],
    }
}

/// E3 / Figure 11: read miss rates per scheme and benchmark.
///
/// # Panics
///
/// Panics if a shipped kernel races (a bug in the suite).
#[must_use]
pub fn e3_miss_rates(scale: Scale, runner: &Runner) -> ExperimentOutput {
    let main = main_schemes();
    let grid = runner
        .grid()
        .kernels(Kernel::ALL)
        .scale(scale)
        .schemes(main.iter().copied())
        .run()
        .expect("suite is race-free");
    let mut t = Table::new("Figure 11 — read miss rates (64 KB direct-mapped, 16 B lines)");
    t.headers(std::iter::once("bench").chain(main.iter().map(|s| s.label())));
    let mut chart = BarChart::new("Mean read miss rate across the suite", "%");
    let mut sums = vec![0.0f64; main.len()];
    for kernel in Kernel::ALL {
        let mut row = vec![kernel.name().to_string()];
        for (si, scheme) in main.iter().enumerate() {
            let r = grid.get(kernel, *scheme);
            sums[si] += r.sim.miss_rate();
            row.push(pct(r.sim.miss_rate()));
        }
        t.row(row);
    }
    for (si, scheme) in main.iter().enumerate() {
        chart.bar(scheme.label(), 100.0 * sums[si] / Kernel::ALL.len() as f64);
    }
    ExperimentOutput {
        charts: vec![chart],
        id: "e3",
        title: "miss rates (Figure 11)",
        tables: vec![t],
    }
}

/// E4: classification of read misses into necessary and unnecessary.
///
/// # Panics
///
/// Panics if a shipped kernel races (a bug in the suite).
#[must_use]
pub fn e4_miss_classes(scale: Scale, runner: &Runner) -> ExperimentOutput {
    let schemes = [SchemeId::TPI, SchemeId::FULL_MAP];
    let grid = runner
        .grid()
        .kernels(Kernel::ALL)
        .scale(scale)
        .schemes(schemes)
        .run()
        .expect("suite is race-free");
    let mut tables = Vec::new();
    for scheme in schemes {
        let mut t = Table::new(format!(
            "{} — misses by cause (% of all read misses)",
            scheme.label()
        ));
        t.headers([
            "bench",
            "cold",
            "repl",
            "reset",
            "true-shr",
            "false-shr",
            "conserv",
            "unnecessary",
        ]);
        for kernel in Kernel::ALL {
            let r = grid.get(kernel, scheme);
            let total = r.sim.agg.read_misses().max(1) as f64;
            let share = |c: MissClass| pct(r.sim.agg.misses(c) as f64 / total);
            let unnecessary = (r.sim.agg.misses(MissClass::FalseSharing)
                + r.sim.agg.misses(MissClass::Conservative)) as f64
                / total;
            t.row([
                kernel.name().to_string(),
                share(MissClass::Cold),
                share(MissClass::Replacement),
                share(MissClass::Reset),
                share(MissClass::CoherenceTrue),
                share(MissClass::FalseSharing),
                share(MissClass::Conservative),
                pct(unnecessary),
            ]);
        }
        tables.push(t);
    }
    ExperimentOutput {
        charts: Vec::new(),
        id: "e4",
        title: "miss classification: necessary vs unnecessary",
        tables,
    }
}

/// E5: average read-miss latency, TPI vs HW, 16-byte and 64-byte lines.
///
/// # Panics
///
/// Panics if a shipped kernel races (a bug in the suite).
#[must_use]
pub fn e5_miss_latency(scale: Scale, runner: &Runner) -> ExperimentOutput {
    let kernels = [
        Kernel::Spec77,
        Kernel::Ocean,
        Kernel::Flo52,
        Kernel::Qcd2,
        Kernel::Trfd,
    ];
    let grid = runner
        .grid()
        .kernels(kernels)
        .scale(scale)
        .schemes([SchemeId::TPI, SchemeId::FULL_MAP])
        .sweep([4u32, 16], |cfg, &w| cfg.line_words = w)
        .run()
        .expect("suite is race-free");
    let mut t = Table::new("Average miss latency (cycles): TPI vs full-map directory");
    t.headers(["bench", "TPI 16B", "TPI 64B", "HW 16B", "HW 64B"]);
    for kernel in kernels {
        let mut row = vec![kernel.name().to_string()];
        for scheme in [SchemeId::TPI, SchemeId::FULL_MAP] {
            for vi in 0..2 {
                let r = grid.at(kernel, scheme, vi);
                row.push(f(r.sim.avg_miss_latency(), 1));
            }
        }
        t.row(row);
    }
    ExperimentOutput {
        charts: Vec::new(),
        id: "e5",
        title: "average miss latency table",
        tables: vec![t],
    }
}

/// E6: network traffic breakdown per scheme (words per shared reference).
///
/// # Panics
///
/// Panics if a shipped kernel races (a bug in the suite).
#[must_use]
pub fn e6_traffic(scale: Scale, runner: &Runner) -> ExperimentOutput {
    let schemes = [SchemeId::SC, SchemeId::TPI, SchemeId::FULL_MAP];
    let grid = runner
        .grid()
        .kernels(Kernel::ALL)
        .scale(scale)
        .schemes(schemes)
        .run()
        .expect("suite is race-free");
    let mut t = Table::new("Network traffic (words per memory reference), by class");
    t.headers(["bench", "scheme", "read", "write", "coherence", "total"]);
    for kernel in Kernel::ALL {
        for scheme in schemes {
            let r = grid.get(kernel, scheme);
            let refs = (r.sim.agg.reads + r.sim.agg.writes).max(1) as f64;
            let per = |c: TrafficClass| f(r.sim.traffic.words(c) as f64 / refs, 3);
            t.row([
                kernel.name().to_string(),
                scheme.label().to_string(),
                per(TrafficClass::Read),
                per(TrafficClass::Write),
                per(TrafficClass::Coherence),
                f(r.sim.words_per_reference(), 3),
            ]);
        }
    }
    ExperimentOutput {
        charts: Vec::new(),
        id: "e6",
        title: "network traffic breakdown",
        tables: vec![t],
    }
}

/// E7: execution time comparison (the headline figure).
///
/// # Panics
///
/// Panics if a shipped kernel races (a bug in the suite).
#[must_use]
pub fn e7_exec_time(scale: Scale, runner: &Runner) -> ExperimentOutput {
    let main = main_schemes();
    let grid = runner
        .grid()
        .kernels(Kernel::ALL)
        .scale(scale)
        .schemes(main.iter().copied())
        .run()
        .expect("suite is race-free");
    let mut t = Table::new("Execution time (cycles; parenthesized: normalized to HW)");
    t.headers(std::iter::once("bench").chain(main.iter().map(|s| s.label())));
    let hw_index = main
        .iter()
        .position(|&s| s == SchemeId::FULL_MAP)
        .expect("the full-map directory anchors the normalization");
    let mut log_sums = vec![0.0f64; main.len()];
    for kernel in Kernel::ALL {
        let results: Vec<_> = main.iter().map(|&s| grid.get(kernel, s)).collect();
        let hw = results[hw_index].sim.total_cycles.max(1) as f64;
        let mut row = vec![kernel.name().to_string()];
        for (si, r) in results.iter().enumerate() {
            let norm = r.sim.total_cycles as f64 / hw;
            log_sums[si] += norm.ln();
            row.push(format!("{} ({})", r.sim.total_cycles, f(norm, 2)));
        }
        t.row(row);
    }
    let mut chart = BarChart::new(
        "Geometric-mean execution time, normalized to the full-map directory",
        "x",
    );
    for (si, scheme) in main.iter().enumerate() {
        chart.bar(
            scheme.label(),
            (log_sums[si] / Kernel::ALL.len() as f64).exp(),
        );
    }
    ExperimentOutput {
        charts: vec![chart],
        id: "e7",
        title: "execution time comparison",
        tables: vec![t],
    }
}

/// E8: timetag-width sensitivity ("4 or 8 bits is enough").
///
/// # Panics
///
/// Panics if a shipped kernel races (a bug in the suite).
#[must_use]
pub fn e8_timetag_bits(scale: Scale, runner: &Runner) -> ExperimentOutput {
    let widths = [2u32, 3, 4, 6, 8];
    let grid = runner
        .grid()
        .kernels(Kernel::ALL)
        .scale(scale)
        .scheme(SchemeId::TPI)
        .sweep(widths, |cfg, &bits| cfg.tag_bits = bits)
        .run()
        .expect("suite is race-free");
    let mut t = Table::new("TPI execution time vs timetag width (normalized to 8-bit)");
    t.headers(["bench", "2b", "3b", "4b", "6b", "8b", "reset words @2b"]);
    for kernel in Kernel::ALL {
        let base = grid
            .at(kernel, SchemeId::TPI, widths.len() - 1)
            .sim
            .total_cycles
            .max(1) as f64;
        let mut row = vec![kernel.name().to_string()];
        for vi in 0..widths.len() {
            let r = grid.at(kernel, SchemeId::TPI, vi);
            row.push(f(r.sim.total_cycles as f64 / base, 3));
        }
        let reset2 = grid.at(kernel, SchemeId::TPI, 0).sim.agg.reset_words;
        row.push(reset2.to_string());
        t.row(row);
    }
    ExperimentOutput {
        charts: Vec::new(),
        id: "e8",
        title: "timetag-width sensitivity",
        tables: vec![t],
    }
}

/// E9: line-size sensitivity for TPI and HW.
///
/// # Panics
///
/// Panics if a shipped kernel races (a bug in the suite).
#[must_use]
pub fn e9_line_size(scale: Scale, runner: &Runner) -> ExperimentOutput {
    let schemes = [SchemeId::TPI, SchemeId::FULL_MAP];
    let grid = runner
        .grid()
        .kernels(Kernel::ALL)
        .scale(scale)
        .schemes(schemes)
        .sweep([1u32, 2, 4, 8, 16], |cfg, &w| cfg.line_words = w)
        .run()
        .expect("suite is race-free");
    let mut tables = Vec::new();
    for scheme in schemes {
        let mut t = Table::new(format!("{} read miss rate vs line size", scheme.label()));
        t.headers(["bench", "4B", "8B", "16B", "32B", "64B"]);
        for kernel in Kernel::ALL {
            let mut row = vec![kernel.name().to_string()];
            for vi in 0..5 {
                let r = grid.at(kernel, scheme, vi);
                row.push(pct(r.sim.miss_rate()));
            }
            t.row(row);
        }
        tables.push(t);
    }
    ExperimentOutput {
        charts: Vec::new(),
        id: "e9",
        title: "line-size sensitivity",
        tables,
    }
}

/// E10: cache-size sensitivity.
///
/// # Panics
///
/// Panics if a shipped kernel races (a bug in the suite).
#[must_use]
pub fn e10_cache_size(scale: Scale, runner: &Runner) -> ExperimentOutput {
    let schemes = [SchemeId::TPI, SchemeId::FULL_MAP];
    let grid = runner
        .grid()
        .kernels(Kernel::ALL)
        .scale(scale)
        .schemes(schemes)
        .sweep([16usize, 32, 64, 128, 256], |cfg, &kb| {
            cfg.cache_bytes = kb * 1024;
        })
        .run()
        .expect("suite is race-free");
    let mut tables = Vec::new();
    for scheme in schemes {
        let mut t = Table::new(format!("{} read miss rate vs cache size", scheme.label()));
        t.headers(["bench", "16KB", "32KB", "64KB", "128KB", "256KB"]);
        for kernel in Kernel::ALL {
            let mut row = vec![kernel.name().to_string()];
            for vi in 0..5 {
                let r = grid.at(kernel, scheme, vi);
                row.push(pct(r.sim.miss_rate()));
            }
            t.row(row);
        }
        tables.push(t);
    }
    ExperimentOutput {
        charts: Vec::new(),
        id: "e10",
        title: "cache-size sensitivity",
        tables,
    }
}

/// E11: two-phase reset vs full cache flush at counter wrap.
///
/// # Panics
///
/// Panics if a shipped kernel races (a bug in the suite).
#[must_use]
pub fn e11_reset_ablation(scale: Scale, runner: &Runner) -> ExperimentOutput {
    let base = ExperimentConfig::builder()
        .tag_bits(3)
        .build()
        .expect("3-bit tags are valid");
    let grid = runner
        .grid()
        .kernels(Kernel::ALL)
        .scale(scale)
        .scheme(SchemeId::TPI)
        .base(base)
        .sweep(
            [ResetStrategy::TwoPhase, ResetStrategy::FullFlushOnWrap],
            |cfg, &s| cfg.reset_strategy = s,
        )
        .run()
        .expect("suite is race-free");
    let mut t = Table::new("TPI with 3-bit tags: two-phase reset vs flush-on-wrap");
    t.headers([
        "bench",
        "two-phase cycles",
        "flush cycles",
        "flush/two-phase",
        "tp resets",
        "flush resets",
    ]);
    for kernel in Kernel::ALL {
        let tp = grid.at(kernel, SchemeId::TPI, 0);
        let fl = grid.at(kernel, SchemeId::TPI, 1);
        t.row([
            kernel.name().to_string(),
            tp.sim.total_cycles.to_string(),
            fl.sim.total_cycles.to_string(),
            f(
                fl.sim.total_cycles as f64 / tp.sim.total_cycles.max(1) as f64,
                3,
            ),
            tp.sim.agg.reset_words.to_string(),
            fl.sim.agg.reset_words.to_string(),
        ]);
    }
    ExperimentOutput {
        charts: Vec::new(),
        id: "e11",
        title: "reset-strategy ablation",
        tables: vec![t],
    }
}

/// E12: plain FIFO write buffer vs write-buffer-organized-as-cache.
///
/// # Panics
///
/// Panics if a shipped kernel races (a bug in the suite).
#[must_use]
pub fn e12_write_buffer(scale: Scale, runner: &Runner) -> ExperimentOutput {
    let grid = runner
        .grid()
        .kernels(Kernel::ALL)
        .scale(scale)
        .scheme(SchemeId::TPI)
        .sweep(
            [WriteBufferKind::Fifo, WriteBufferKind::Coalescing],
            |cfg, &k| cfg.wbuffer = k,
        )
        .run()
        .expect("suite is race-free");
    let mut t = Table::new("TPI write traffic: FIFO vs coalescing write buffer");
    t.headers([
        "bench",
        "fifo wr words",
        "coal wr words",
        "eliminated",
        "fifo cycles",
        "coal cycles",
    ]);
    for kernel in Kernel::ALL {
        let fifo = grid.at(kernel, SchemeId::TPI, 0);
        let coal = grid.at(kernel, SchemeId::TPI, 1);
        let fw = fifo.sim.traffic.words(TrafficClass::Write);
        let cw = coal.sim.traffic.words(TrafficClass::Write);
        t.row([
            kernel.name().to_string(),
            fw.to_string(),
            cw.to_string(),
            pct(1.0 - cw as f64 / fw.max(1) as f64),
            fifo.sim.total_cycles.to_string(),
            coal.sim.total_cycles.to_string(),
        ]);
    }
    ExperimentOutput {
        charts: Vec::new(),
        id: "e12",
        title: "write-buffer ablation",
        tables: vec![t],
    }
}

/// E13 / Section 5: scheduling policies and task migration under TPI.
///
/// # Panics
///
/// Panics if a shipped kernel races (a bug in the suite).
#[must_use]
pub fn e13_scheduling(scale: Scale, runner: &Runner) -> ExperimentOutput {
    let policies = [
        SchedulePolicy::StaticBlock,
        SchedulePolicy::StaticCyclic,
        SchedulePolicy::Dynamic { chunk: 4 },
        SchedulePolicy::DynamicMigrating {
            chunk: 4,
            migrate_per_1024: 256,
        },
    ];
    let grid = runner
        .grid()
        .kernels(Kernel::ALL)
        .scale(scale)
        .scheme(SchemeId::TPI)
        .sweep(policies, |cfg, &p| cfg.policy = p)
        .run()
        .expect("suite is race-free under every schedule");
    let mut t = Table::new("TPI under different DOALL schedules (cycles; miss rate)");
    t.headers([
        "bench",
        "static-block",
        "static-cyclic",
        "dynamic(4)",
        "dyn+migration",
    ]);
    for kernel in Kernel::ALL {
        let mut row = vec![kernel.name().to_string()];
        for vi in 0..policies.len() {
            let r = grid.at(kernel, SchemeId::TPI, vi);
            row.push(format!(
                "{} ({})",
                r.sim.total_cycles,
                pct(r.sim.miss_rate())
            ));
        }
        t.row(row);
    }
    ExperimentOutput {
        charts: Vec::new(),
        id: "e13",
        title: "scheduling & migration (Section 5)",
        tables: vec![t],
    }
}

/// E14: processor-count scaling.
///
/// # Panics
///
/// Panics if a shipped kernel races (a bug in the suite).
#[must_use]
pub fn e14_scaling(scale: Scale, runner: &Runner) -> ExperimentOutput {
    let schemes = [SchemeId::TPI, SchemeId::FULL_MAP];
    let counts = [4u32, 8, 16, 32, 64];
    let grid = runner
        .grid()
        .kernels(Kernel::ALL)
        .scale(scale)
        .schemes(schemes)
        .sweep(counts, |cfg, &p| cfg.procs = p)
        .run()
        .expect("suite is race-free");
    let mut tables = Vec::new();
    for scheme in schemes {
        let mut t = Table::new(format!(
            "{} execution cycles vs processor count (speedup over P=4)",
            scheme.label()
        ));
        t.headers(["bench", "P=4", "P=8", "P=16", "P=32", "P=64"]);
        for kernel in Kernel::ALL {
            let mut row = vec![kernel.name().to_string()];
            let base = grid.at(kernel, scheme, 0).sim.total_cycles.max(1);
            for vi in 0..counts.len() {
                let r = grid.at(kernel, scheme, vi);
                row.push(format!(
                    "{} ({}x)",
                    r.sim.total_cycles,
                    f(base as f64 / r.sim.total_cycles.max(1) as f64, 2)
                ));
            }
            t.row(row);
        }
        tables.push(t);
    }
    ExperimentOutput {
        charts: Vec::new(),
        id: "e14",
        title: "processor-count scaling",
        tables,
    }
}

/// E15: compiler optimization-level ablation (extension experiment).
///
/// # Panics
///
/// Panics if a shipped kernel races (a bug in the suite).
#[must_use]
pub fn e15_opt_levels(scale: Scale, runner: &Runner) -> ExperimentOutput {
    let levels = [OptLevel::Naive, OptLevel::Intra, OptLevel::Full];
    let grid = runner
        .grid()
        .kernels(Kernel::ALL)
        .scale(scale)
        .scheme(SchemeId::TPI)
        .sweep(levels, |cfg, &l| cfg.opt_level = l)
        .run()
        .expect("suite is race-free");
    let mut t = Table::new("TPI under naive / intraprocedural / full compiler analysis");
    t.headers([
        "bench",
        "naive cycles",
        "intra cycles",
        "full cycles",
        "naive marked",
        "full marked",
    ]);
    for kernel in Kernel::ALL {
        let mut row = vec![kernel.name().to_string()];
        let mut marked = Vec::new();
        for vi in 0..levels.len() {
            let r = grid.at(kernel, SchemeId::TPI, vi);
            row.push(r.sim.total_cycles.to_string());
            marked.push(pct(r.marking.marked_fraction()));
        }
        row.push(marked[0].clone());
        row.push(marked[2].clone());
        t.row(row);
    }
    ExperimentOutput {
        charts: Vec::new(),
        id: "e15",
        title: "compiler optimization levels",
        tables: vec![t],
    }
}

/// E16 / Section 5: lock-guarded critical sections (MDG extension
/// workload).
///
/// # Panics
///
/// Panics if the MDG workload races (a bug in the suite).
#[must_use]
pub fn e16_critical_sections(scale: Scale, runner: &Runner) -> ExperimentOutput {
    let schemes_grid = runner
        .grid()
        .kernel(Kernel::Mdg)
        .scale(scale)
        .schemes(main_schemes())
        .run()
        .expect("MDG is race-free");
    let mut t = Table::new("MDG (lock-guarded accumulation) across the schemes");
    t.headers([
        "scheme",
        "cycles",
        "miss rate",
        "lock acquires",
        "lock wait cycles",
    ]);
    for scheme in main_schemes() {
        let r = schemes_grid.get(Kernel::Mdg, scheme);
        t.row([
            scheme.label().to_string(),
            r.sim.total_cycles.to_string(),
            pct(r.sim.miss_rate()),
            r.sim.lock_acquires.to_string(),
            r.sim.lock_wait_cycles.to_string(),
        ]);
    }
    let counts = [2u32, 4, 8, 16, 32];
    let scaling_grid = runner
        .grid()
        .kernel(Kernel::Mdg)
        .scale(scale)
        .scheme(SchemeId::TPI)
        .sweep(counts, |cfg, &p| cfg.procs = p)
        .run()
        .expect("MDG is race-free");
    let mut s = Table::new("MDG under TPI vs processor count: the lock bounds scaling");
    s.headers(["P", "cycles", "speedup over P=2", "lock wait share"]);
    let base = scaling_grid
        .at(Kernel::Mdg, SchemeId::TPI, 0)
        .sim
        .total_cycles
        .max(1);
    for (vi, procs) in counts.into_iter().enumerate() {
        let r = scaling_grid.at(Kernel::Mdg, SchemeId::TPI, vi);
        s.row([
            procs.to_string(),
            r.sim.total_cycles.to_string(),
            f(base as f64 / r.sim.total_cycles.max(1) as f64, 2),
            pct(r.sim.lock_wait_cycles as f64
                / (r.sim.total_cycles.max(1) as f64 * f64::from(procs))),
        ]);
    }
    ExperimentOutput {
        charts: Vec::new(),
        id: "e16",
        title: "critical sections & locks (Section 5)",
        tables: vec![t, s],
    }
}

/// E17: verified-hit re-stamping ablation.
///
/// A verified Time-Read proves the word fresh *now*, so stamping it with
/// the current epoch is sound and keeps long-lived read-mostly data (the
/// SPEC77 coefficient table) alive indefinitely. This design point is
/// implied by the scheme's hardware (tags live next to the data in SRAM);
/// the ablation measures what it is worth.
///
/// # Panics
///
/// Panics if a shipped kernel races (a bug in the suite).
#[must_use]
pub fn e17_restamp_ablation(scale: Scale, runner: &Runner) -> ExperimentOutput {
    let grid = runner
        .grid()
        .kernels(Kernel::ALL)
        .scale(scale)
        .scheme(SchemeId::TPI)
        .sweep([true, false], |cfg, &on| cfg.restamp_verified_hits = on)
        .run()
        .expect("suite is race-free");
    let mut t = Table::new("TPI with and without re-stamping verified Time-Read hits");
    t.headers([
        "bench",
        "restamp cycles",
        "no-restamp cycles",
        "ratio",
        "restamp miss",
        "no-restamp miss",
    ]);
    for kernel in Kernel::ALL {
        let on = grid.at(kernel, SchemeId::TPI, 0);
        let off = grid.at(kernel, SchemeId::TPI, 1);
        t.row([
            kernel.name().to_string(),
            on.sim.total_cycles.to_string(),
            off.sim.total_cycles.to_string(),
            f(
                off.sim.total_cycles as f64 / on.sim.total_cycles.max(1) as f64,
                3,
            ),
            pct(on.sim.miss_rate()),
            pct(off.sim.miss_rate()),
        ]);
    }
    ExperimentOutput {
        charts: Vec::new(),
        id: "e17",
        title: "verified-hit re-stamp ablation",
        tables: vec![t],
    }
}

/// E18: write-through vs write-back-at-task-boundary (the \[10\] policy
/// discussion the paper cites when justifying write-through).
///
/// # Panics
///
/// Panics if a shipped kernel races (a bug in the suite).
#[must_use]
pub fn e18_write_policy(scale: Scale, runner: &Runner) -> ExperimentOutput {
    use tpi_cache::WritePolicy;
    let grid = runner
        .grid()
        .kernels(Kernel::ALL)
        .scale(scale)
        .scheme(SchemeId::TPI)
        .sweep(
            [WritePolicy::Through, WritePolicy::BackAtBoundary],
            |cfg, &p| cfg.write_policy = p,
        )
        .run()
        .expect("suite is race-free");
    let mut t = Table::new(
        "TPI write policy: write-through (FIFO buffer) vs write-back at epoch boundaries",
    );
    t.headers([
        "bench",
        "WT cycles",
        "WB cycles",
        "WB/WT",
        "WT wr words",
        "WB wr words",
    ]);
    for kernel in Kernel::ALL {
        let wt = grid.at(kernel, SchemeId::TPI, 0);
        let wb = grid.at(kernel, SchemeId::TPI, 1);
        t.row([
            kernel.name().to_string(),
            wt.sim.total_cycles.to_string(),
            wb.sim.total_cycles.to_string(),
            f(
                wb.sim.total_cycles as f64 / wt.sim.total_cycles.max(1) as f64,
                3,
            ),
            wt.sim.traffic.words(TrafficClass::Write).to_string(),
            wb.sim.traffic.words(TrafficClass::Write).to_string(),
        ]);
    }
    ExperimentOutput {
        charts: Vec::new(),
        id: "e18",
        title: "write-policy ablation",
        tables: vec![t],
    }
}

/// E19: coherence overhead over a perfect-coherence oracle, plus an
/// epoch-by-epoch timeline (extension figure).
///
/// # Panics
///
/// Panics if a shipped kernel races (a bug in the suite).
#[must_use]
pub fn e19_coherence_overhead(scale: Scale, runner: &Runner) -> ExperimentOutput {
    let grid = runner
        .grid()
        .kernels(Kernel::ALL)
        .scale(scale)
        .schemes([
            SchemeId::IDEAL,
            SchemeId::TPI,
            SchemeId::FULL_MAP,
            SchemeId::SC,
        ])
        .run()
        .expect("suite is race-free");
    let mut t = Table::new("Execution time over the perfect-coherence oracle (coherence overhead)");
    t.headers(["bench", "IDEAL cycles", "TPI/IDEAL", "HW/IDEAL", "SC/IDEAL"]);
    for kernel in Kernel::ALL {
        let ideal = grid.get(kernel, SchemeId::IDEAL).sim.total_cycles.max(1);
        let tpi = grid.get(kernel, SchemeId::TPI).sim.total_cycles;
        let hw = grid.get(kernel, SchemeId::FULL_MAP).sim.total_cycles;
        let sc = grid.get(kernel, SchemeId::SC).sim.total_cycles;
        t.row([
            kernel.name().to_string(),
            ideal.to_string(),
            f(tpi as f64 / ideal as f64, 2),
            f(hw as f64 / ideal as f64, 2),
            f(sc as f64 / ideal as f64, 2),
        ]);
    }
    // Timeline figure: per-epoch cycles for ARC2D under TPI vs HW (the
    // alternating x/y sweeps are visible as alternating epoch costs).
    let mut tl = Table::new("ARC2D per-epoch cycles (first 12 epochs): TPI vs HW");
    tl.headers([
        "epoch",
        "TPI cycles",
        "TPI misses",
        "HW cycles",
        "HW misses",
    ]);
    let rt = grid.get(Kernel::Arc2d, SchemeId::TPI);
    let rh = grid.get(Kernel::Arc2d, SchemeId::FULL_MAP);
    for (pt, ph) in rt.sim.profile.iter().zip(&rh.sim.profile).take(12) {
        tl.row([
            pt.epoch.to_string(),
            pt.cycles.to_string(),
            pt.misses.to_string(),
            ph.cycles.to_string(),
            ph.misses.to_string(),
        ]);
    }
    ExperimentOutput {
        charts: Vec::new(),
        id: "e19",
        title: "coherence overhead vs oracle + epoch timeline",
        tables: vec![t, tl],
    }
}

/// E20 / Section 5: doacross pipelining via post/wait — synchronization
/// granularity and schedule sweep on a 2-D wavefront (extension).
///
/// # Panics
///
/// Panics if the wavefront program traces with a race (a bug in its
/// post/wait synchronization).
#[must_use]
pub fn e20_doacross(scale: Scale, runner: &Runner) -> ExperimentOutput {
    use tpi::ir::{subs, Cond, Program, ProgramBuilder};
    let n: i64 = match scale {
        Scale::Test => 32,
        Scale::Paper => 96,
        // E20 studies sync granularity, not processor count; a modest
        // widening keeps the wavefront tractable at large proc counts.
        Scale::Large => 128,
    };
    let pipeline = |g: i64| -> Program {
        let mut p = ProgramBuilder::new();
        let x = p.shared("X", [n as u64, n as u64]);
        let ev = p.event();
        let main = p.proc("main", |f| {
            f.doall(0, n - 1, |i, f| {
                f.serial(0, n - 1, |j, f| f.store(x.at(subs![i, j]), vec![], 1));
            });
            f.doall(0, n - 1, |i, f| {
                f.serial_step(0, n - 1, g, |jj, f| {
                    f.if_else(
                        Cond::EveryN {
                            var: i,
                            modulus: i64::MAX,
                            phase: 0,
                        },
                        |f| {
                            f.serial(jj, jj + g - 1, |j, f| {
                                f.store(x.at(subs![i, j]), vec![x.at(subs![i, j])], 4);
                            });
                        },
                        |f| {
                            f.wait(ev, (i - 1) * n + jj);
                            f.serial(jj, jj + g - 1, |j, f| {
                                f.store(
                                    x.at(subs![i, j]),
                                    vec![x.at(subs![i - 1, j]), x.at(subs![i, j])],
                                    4,
                                );
                            });
                        },
                    );
                    f.post(ev, i * n + jj);
                });
            });
        });
        p.finish(main).expect("pipeline is well-formed")
    };
    let grains: Vec<i64> = [2i64, 4, 8, 16, 32]
        .into_iter()
        .filter(|g| n % g == 0)
        .collect();
    let mut sweep_grid = runner.grid().scale(scale).scheme(SchemeId::TPI).sweep(
        [SchedulePolicy::StaticBlock, SchedulePolicy::StaticCyclic],
        |cfg, &p| cfg.policy = p,
    );
    for &g in &grains {
        sweep_grid = sweep_grid.program(&format!("wavefront-{n}-g{g}"), pipeline(g));
    }
    let sweep_grid = sweep_grid.run().expect("wavefront is synchronized");
    let mut t = Table::new(format!(
        "{n}x{n} wavefront: post granularity x schedule (TPI cycles)"
    ));
    t.headers(["post every", "static-block", "static-cyclic"]);
    for &g in &grains {
        let mut row = vec![format!("{g} cols")];
        for vi in 0..2 {
            let r = sweep_grid.at_program(&format!("wavefront-{n}-g{g}"), SchemeId::TPI, vi);
            row.push(r.sim.total_cycles.to_string());
        }
        t.row(row);
    }
    let mut s = Table::new("Wavefront (post every 8, cyclic) across schemes");
    s.headers(["scheme", "cycles", "wait cycles"]);
    let cyclic = ExperimentConfig::builder()
        .policy(SchedulePolicy::StaticCyclic)
        .build()
        .expect("cyclic paper machine is valid");
    let schemes_grid = runner
        .grid()
        .scale(scale)
        .program(&format!("wavefront-{n}-g8"), pipeline(8))
        .base(cyclic)
        .schemes(main_schemes())
        .run()
        .expect("wavefront is synchronized");
    for scheme in main_schemes() {
        let r = schemes_grid.at_program(&format!("wavefront-{n}-g8"), scheme, 0);
        t_row_push(
            &mut s,
            scheme.label(),
            r.sim.total_cycles,
            r.sim.lock_wait_cycles,
        );
    }
    ExperimentOutput {
        charts: Vec::new(),
        id: "e20",
        title: "doacross pipelining (Section 5)",
        tables: vec![t, s],
    }
}

/// E21 / Section 3: one-level tagged cache vs the off-the-shelf two-level
/// arrangement (stock on-chip L1 over the tagged off-chip cache).
///
/// # Panics
///
/// Panics if a shipped kernel races (a bug in the suite).
#[must_use]
pub fn e21_two_level(scale: Scale, runner: &Runner) -> ExperimentOutput {
    use tpi_proto::L1Config;
    let grid = runner
        .grid()
        .kernels(Kernel::ALL)
        .scale(scale)
        .scheme(SchemeId::TPI)
        .sweep([None, Some(L1Config::paper_default())], |cfg, &l1| {
            cfg.l1 = l1;
        })
        .run()
        .expect("suite is race-free");
    let mut t = Table::new(
        "TPI: one-level tagged cache vs stock 8 KB L1 + tagged off-chip cache (5-cycle)",
    );
    t.headers([
        "bench",
        "1-level cycles",
        "2-level cycles",
        "2L/1L",
        "plain hit share",
    ]);
    for kernel in Kernel::ALL {
        let one = grid.at(kernel, SchemeId::TPI, 0);
        let two = grid.at(kernel, SchemeId::TPI, 1);
        let plain_share = two.sim.agg.read_hits as f64 / two.sim.agg.reads.max(1) as f64;
        t.row([
            kernel.name().to_string(),
            one.sim.total_cycles.to_string(),
            two.sim.total_cycles.to_string(),
            f(
                two.sim.total_cycles as f64 / one.sim.total_cycles.max(1) as f64,
                3,
            ),
            pct(plain_share),
        ]);
    }
    ExperimentOutput {
        charts: Vec::new(),
        id: "e21",
        title: "off-the-shelf two-level implementation (Section 3)",
        tables: vec![t],
    }
}

/// E22: what a failed tag check should fetch — the whole line (spatial
/// refresh, the paper's organization) or just the word (minimal traffic).
///
/// # Panics
///
/// Panics if a shipped kernel races (a bug in the suite).
#[must_use]
pub fn e22_fetch_granularity(scale: Scale, runner: &Runner) -> ExperimentOutput {
    use tpi_proto::FetchGranularity;
    let grid = runner
        .grid()
        .kernels(Kernel::ALL)
        .scale(scale)
        .scheme(SchemeId::TPI)
        .sweep(
            [FetchGranularity::Line, FetchGranularity::Word],
            |cfg, &g| cfg.coherence_fetch = g,
        )
        .run()
        .expect("suite is race-free");
    let mut t = Table::new("TPI coherence-miss fetch granularity: line vs word");
    t.headers([
        "bench",
        "line cycles",
        "word cycles",
        "word/line",
        "line rd words",
        "word rd words",
    ]);
    for kernel in Kernel::ALL {
        let line = grid.at(kernel, SchemeId::TPI, 0);
        let word = grid.at(kernel, SchemeId::TPI, 1);
        t.row([
            kernel.name().to_string(),
            line.sim.total_cycles.to_string(),
            word.sim.total_cycles.to_string(),
            f(
                word.sim.total_cycles as f64 / line.sim.total_cycles.max(1) as f64,
                3,
            ),
            line.sim.traffic.words(TrafficClass::Read).to_string(),
            word.sim.traffic.words(TrafficClass::Read).to_string(),
        ]);
    }
    ExperimentOutput {
        charts: Vec::new(),
        id: "e22",
        title: "coherence-miss fetch granularity ablation",
        tables: vec![t],
    }
}

fn t_row_push(t: &mut Table, label: &str, cycles: u64, waits: u64) {
    t.row([label.to_string(), cycles.to_string(), waits.to_string()]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_experiments_render() {
        let runner = Runner::new();
        let e1 = run_experiment("e1", Scale::Test, &runner).unwrap();
        assert_eq!(e1.tables.len(), 2);
        assert!(e1.to_string().contains("full-map"));
        let e2 = run_experiment("e2", Scale::Test, &runner).unwrap();
        assert!(e2.to_string().contains("timetag"));
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run_experiment("e99", Scale::Test, &Runner::new()).is_none());
    }

    #[test]
    fn miss_rate_table_has_all_benchmarks() {
        let out = e3_miss_rates(Scale::Test, &Runner::new());
        assert_eq!(out.tables[0].len(), 6);
    }

    #[test]
    fn full_matrix_covers_24_runs() {
        assert_eq!(
            crate::harness::full_matrix(Scale::Test, &Runner::new()).len(),
            24
        );
    }

    #[test]
    fn all_ids_resolve() {
        for id in ALL_IDS {
            // Only the cheap, closed-form ones are actually executed here;
            // the simulated ones are covered by the integration tests and
            // the benches at test scale.
            if id == "e1" || id == "e2" {
                assert!(run_experiment(id, Scale::Test, &Runner::new()).is_some());
            }
        }
    }

    #[test]
    fn shared_runner_reuses_traces_across_experiments() {
        // e3 and e7 run the same 24 cells; a shared runner interprets each
        // kernel's trace once and simulates each distinct cell once.
        let runner = Runner::new();
        let _ = e3_miss_rates(Scale::Test, &runner);
        let after_e3 = runner.stats();
        assert_eq!(after_e3.traces_built, 6);
        assert_eq!(after_e3.cells_simulated, 24);
        let _ = e7_exec_time(Scale::Test, &runner);
        let after_e7 = runner.stats();
        assert_eq!(after_e7.traces_built, 6, "e7 reuses e3's traces");
        assert_eq!(
            after_e7.cells_simulated, 48,
            "cells are re-simulated (results are not cached), traces are not re-interpreted"
        );
    }
}
