//! Benchmark harness regenerating every table and figure of the paper.
//!
//! Each `eN` function reproduces one experiment from the per-experiment
//! index in `DESIGN.md`; the `repro` binary runs them at paper scale and
//! the Criterion benches exercise the same code at test scale. Experiment
//! ids:
//!
//! | id  | reproduces |
//! |-----|------------|
//! | e1  | Figure 5 — storage overhead comparison |
//! | e2  | Figure 8 — simulation parameters |
//! | e3  | Figure 11 — miss rates per scheme per benchmark |
//! | e4  | miss classification (necessary vs unnecessary misses) |
//! | e5  | average miss latency, TPI vs HW at 16 B / 64 B lines |
//! | e6  | network traffic breakdown (read / write / coherence) |
//! | e7  | execution time comparison across the four schemes |
//! | e8  | timetag-width sensitivity |
//! | e9  | line-size sensitivity |
//! | e10 | cache-size sensitivity |
//! | e11 | two-phase reset vs full-flush ablation |
//! | e12 | write-buffer-organized-as-cache ablation |
//! | e13 | scheduling policy and task migration (Section 5) |
//! | e14 | processor-count scaling |
//! | e15 | compiler optimization-level ablation (naive/intra/full) |
//! | e16 | critical sections & lock serialization (Section 5, MDG) |
//! | e17 | verified-hit re-stamp ablation |
//! | e18 | write-through vs write-back-at-boundary policy ablation |
//! | e19 | coherence overhead vs perfect-coherence oracle + epoch timeline |
//! | e20 | doacross post/wait pipelining: granularity and schedule sweep |
//! | e21 | one-level vs off-the-shelf two-level TPI (Section 3) |
//! | e22 | coherence-miss fetch granularity (line vs word) |

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;

pub use experiments::{run_experiment, ExperimentOutput, ALL_IDS};
