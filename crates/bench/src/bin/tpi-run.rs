//! `tpi-run` — compile, mark, and simulate a textual-format program or a
//! named suite kernel.
//!
//! ```text
//! tpi-run program.tpi                       # run under TPI on the paper machine
//! tpi-run --kernel ocean                    # run a suite kernel by name
//! tpi-run --kernel fshare --scale test      # a fuzz-promoted kernel, test size
//! tpi-run program.tpi --scheme all          # compare every registered scheme
//! tpi-run program.tpi --scheme tardis       # any registry name (id or label) works
//! tpi-run program.tpi --scheme hw --procs 32 --line-words 16 --tag-bits 4
//! tpi-run --kernel ldreuse --scheme all --misses   # per-scheme miss-class matrix
//! tpi-run program.tpi --show-program        # echo the parsed IR
//! tpi-run program.tpi --show-marking        # dump the compiler's decisions
//! tpi-run program.tpi --verify              # panic if any hit observes stale data
//! tpi-run program.tpi --lint                # static lints only, no simulation
//! tpi-run program.tpi --profile             # machine-parsable stage profile on stdout
//! ```
//!
//! Scheme comparisons run through a [`Runner`], so the program is marked
//! and its trace interpreted once no matter how many schemes are listed.

use std::process::ExitCode;
use std::sync::Arc;
use tpi::cli::{kernel_by_name, parse_bounded, CliError};
use tpi::tables::{pct, Table};
use tpi::{ExperimentConfig, Runner};
use tpi_compiler::{mark_program, OptLevel};
use tpi_ir::{display, parse_program, Program, RefSite};
use tpi_mem::ReadKind;
use tpi_proto::{registry, MissClass, SchemeId};
use tpi_workloads::Scale;

const USAGE: &str = "\
tpi-run: compile, mark, and simulate a program under the coherence schemes

USAGE:
    tpi-run <file.tpi> [OPTIONS]
    tpi-run --kernel <name> [OPTIONS]

OPTIONS:
    --kernel <name>       run a suite kernel (SPEC77, OCEAN, FLO52, QCD2,
                          TRFD, ARC2D, MDG, FSHARE, LDREUSE, MIGRATE)
    --scale test|paper|large  problem size for --kernel [default: paper]
    --scheme <s>|all      scheme(s) to simulate        [default: tpi]
    --procs <n>           processors, 1-4096
    --shards <n>          shard the replay loop, 1-256 (execution knob:
                          results are bit-identical for any value)
    --line-words <n>      cache line size in words, 1-64
    --tag-bits <n>        timetag width in bits, 1-32
    --cache-kb <n>        per-node cache size in KB, 1-65536
    --opt naive|intra|full  compiler analysis level
    --misses              per-scheme miss-class breakdown table
    --verify              panic if any hit observes stale data
    --export              canonicalize: reprint the parsed program
    --lint                static lints only, no simulation
    --profile             machine-parsable stage profile on stdout
    --show-program        echo the parsed IR
    --show-marking        dump the compiler's decisions
    -h, --help            show this help
";

struct Options {
    source: Source,
    scale: Scale,
    schemes: Vec<SchemeId>,
    cfg: ExperimentConfig,
    show_program: bool,
    show_marking: bool,
    export: bool,
    lint: bool,
    profile: bool,
    misses: bool,
    /// Replay-loop shard count (`None` leaves the runner's default, which
    /// honours the `TPI_SIM_SHARDS` environment variable).
    shards: Option<usize>,
}

enum Source {
    File(String),
    Kernel(tpi_workloads::Kernel),
}

fn parse_args() -> Result<Option<Options>, CliError> {
    let mut file: Option<String> = None;
    let mut kernel = None;
    let mut scale = Scale::Paper;
    let mut schemes: Vec<SchemeId> = vec![SchemeId::TPI];
    let mut builder = ExperimentConfig::builder();
    let mut show_program = false;
    let mut show_marking = false;
    let mut export = false;
    let mut lint = false;
    let mut profile = false;
    let mut misses = false;
    let mut shards: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--kernel" => kernel = Some(kernel_by_name(&value("--kernel")?)?),
            "--scale" => {
                scale = match value("--scale")?.as_str() {
                    "test" => Scale::Test,
                    "paper" => Scale::Paper,
                    "large" => Scale::Large,
                    s => {
                        return Err(CliError::Field(format!(
                            "error[bad_field]: unknown scale {s:?} (known: test, paper, large)"
                        )))
                    }
                };
            }
            "--scheme" => {
                let v = value("--scheme")?;
                schemes = if v.eq_ignore_ascii_case("all") {
                    registry::global().all().iter().map(|s| s.id()).collect()
                } else {
                    // Registry names (id or label), case-insensitive; the
                    // error already lists everything registered.
                    vec![tpi::cli::scheme_by_name(&v)?]
                };
            }
            "--procs" => {
                builder =
                    builder.procs(parse_bounded("--procs", &value("--procs")?, 1, 4096)? as u32);
            }
            "--shards" => {
                shards = Some(parse_bounded("--shards", &value("--shards")?, 1, 256)? as usize);
            }
            "--line-words" => {
                builder = builder.line_words(parse_bounded(
                    "--line-words",
                    &value("--line-words")?,
                    1,
                    64,
                )? as u32);
            }
            "--tag-bits" => {
                builder = builder.tag_bits(parse_bounded(
                    "--tag-bits",
                    &value("--tag-bits")?,
                    1,
                    32,
                )? as u32);
            }
            "--cache-kb" => {
                builder = builder.cache_bytes(
                    parse_bounded("--cache-kb", &value("--cache-kb")?, 1, 65536)? as usize * 1024,
                );
            }
            "--opt" => {
                builder = match value("--opt")?.as_str() {
                    "naive" => builder.opt_level(OptLevel::Naive),
                    "intra" => builder.opt_level(OptLevel::Intra),
                    "full" => builder.opt_level(OptLevel::Full),
                    s => {
                        return Err(CliError::Field(format!(
                            "error[bad_field]: unknown opt level {s:?} (known: naive, intra, full)"
                        )))
                    }
                };
            }
            "--verify" => builder = builder.verify_freshness(true),
            "--export" => export = true,
            "--lint" => lint = true,
            "--profile" => profile = true,
            "--misses" => misses = true,
            "--show-program" => show_program = true,
            "--show-marking" => show_marking = true,
            other if !other.starts_with('-') && file.is_none() => {
                file = Some(other.to_owned());
            }
            f => return Err(CliError::Usage(format!("unknown flag {f:?}"))),
        }
    }
    let source = match (file, kernel) {
        (None, Some(k)) => Source::Kernel(k),
        (Some(f), None) => Source::File(f),
        (Some(_), Some(_)) => {
            return Err(CliError::Usage(
                "give either a file or --kernel, not both".into(),
            ))
        }
        (None, None) => {
            return Err(CliError::Usage(
                "no program: give a file or --kernel".into(),
            ))
        }
    };
    let cfg = builder
        .build()
        .map_err(|e| CliError::Field(format!("error[bad_field]: invalid configuration: {e}")))?;
    Ok(Some(Options {
        source,
        scale,
        schemes,
        cfg,
        show_program,
        show_marking,
        export,
        lint,
        profile,
        misses,
        shards,
    }))
}

/// Cross-scheme miss-class matrix: one row per scheme, one column per
/// miss cause (counts of read misses).
fn miss_matrix(name: &str, opts: &Options, grid: &tpi::GridResult) -> Table {
    let mut t = Table::new(format!("{name}: read misses by cause"));
    let mut headers = vec!["scheme".to_string(), "reads".to_string()];
    headers.extend(MissClass::ALL.iter().map(ToString::to_string));
    t.headers(headers);
    for &scheme in &opts.schemes {
        let r = grid.at_program(name, scheme, 0);
        let mut row = vec![scheme.label().to_string(), r.sim.agg.reads.to_string()];
        row.extend(
            MissClass::ALL
                .iter()
                .map(|&c| r.sim.agg.misses(c).to_string()),
        );
        t.row(row);
    }
    t
}

fn run(opts: &Options) -> ExitCode {
    let (name, program): (String, Arc<Program>) = match &opts.source {
        Source::File(file) => {
            let src = match std::fs::read_to_string(file) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {file}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match parse_program(&src) {
                Ok(p) => (file.clone(), Arc::new(p)),
                Err(e) => {
                    eprintln!("{file}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        Source::Kernel(k) => (k.name().to_string(), Arc::new(k.build(opts.scale))),
    };
    let cfg = opts.cfg;
    if opts.export {
        // Canonicalize: print the program back in the textual format.
        print!("{}", tpi_ir::program_to_source(&program));
        return ExitCode::SUCCESS;
    }
    if opts.lint {
        // Static analysis only: run the tpi-lint pass registry and exit
        // without simulating (the full oracle lives in `tpi-lint`).
        let options = tpi_analysis::LintOptions {
            level: cfg.opt_level,
            tag_bits: cfg.tag_bits,
        };
        let diagnostics = tpi_analysis::lint_program(&program, &options);
        for d in &diagnostics {
            println!("{}", d.human());
        }
        println!("{name}: {} diagnostic(s)", diagnostics.len());
        return ExitCode::SUCCESS;
    }
    if opts.show_program {
        println!("{}", display::program_to_string(&program));
    }
    if opts.show_marking {
        let marking = mark_program(&program, &cfg.compiler_options());
        let mut t = Table::new(format!("Compiler marking ({} analysis)", cfg.opt_level));
        t.headers(["site", "verdict"]);
        program.for_each_assign(|_, a| {
            for idx in 0..a.reads.len() as u32 {
                let site = RefSite { stmt: a.id, idx };
                let verdict = match marking.tpi_kind(site) {
                    ReadKind::Plain => "plain".to_owned(),
                    ReadKind::TimeRead { distance } => format!("time-read(d={distance})"),
                    other => other.to_string(),
                };
                t.row([format!("S{} read #{idx}", a.id.0), verdict]);
            }
        });
        println!("{t}");
        let s = marking.summary();
        println!(
            "{} shared reads: {} marked, {} plain ({} covered)\n",
            s.shared_reads, s.marked, s.plain, s.covered
        );
    }
    let runner = match opts.shards {
        Some(s) => Runner::new().with_sim_shards(s),
        None => Runner::new(),
    };
    let run_started = std::time::Instant::now();
    let grid = match runner
        .grid()
        .program(&name, Arc::clone(&program))
        .base(cfg)
        .schemes(opts.schemes.iter().copied())
        .run()
    {
        Ok(g) => g,
        Err(e) => {
            eprintln!("{name}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let wall_nanos = u64::try_from(run_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    if opts.profile {
        // Machine-parsable: one `profile ...` line per stage and counter,
        // then the profiled total and the measured wall clock around the
        // grid run (integration tests diff the two).
        let report = runner.profile();
        for s in &report.stages {
            println!(
                "profile stage={} calls={} nanos={}",
                s.path, s.calls, s.nanos
            );
        }
        for (name, value) in &report.counters {
            println!("profile counter={name} value={value}");
        }
        println!("profile total_nanos={}", report.total_nanos());
        println!("profile wall_nanos={wall_nanos}");
    }
    let mut t = Table::new(format!("{name} on {} processors", cfg.procs));
    t.headers([
        "scheme",
        "cycles",
        "miss rate",
        "avg miss lat",
        "net words",
        "lock waits",
    ]);
    let mut hot: Option<Table> = None;
    for &scheme in &opts.schemes {
        let r = grid.at_program(&name, scheme, 0);
        t.row([
            scheme.label().to_string(),
            r.sim.total_cycles.to_string(),
            pct(r.sim.miss_rate()),
            format!("{:.1}", r.sim.avg_miss_latency()),
            r.sim.traffic.total_words().to_string(),
            r.sim.lock_wait_cycles.to_string(),
        ]);
        if scheme == SchemeId::TPI {
            hot = Some(tpi::report::hot_arrays(
                "Hot arrays under TPI (read misses by array)",
                r,
                8,
            ));
        }
    }
    println!("{t}");
    if opts.misses {
        println!("{}", miss_matrix(&name, opts, &grid));
    }
    if let Some(hot) = hot {
        if !hot.is_empty() {
            println!("{hot}");
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(Some(opts)) => run(&opts),
        Ok(None) => ExitCode::SUCCESS,
        Err(e) => e.exit(USAGE),
    }
}
