//! `tpi-run` — compile, mark, and simulate a textual-format program.
//!
//! ```text
//! tpi-run program.tpi                       # run under TPI on the paper machine
//! tpi-run program.tpi --scheme all          # compare every registered scheme
//! tpi-run program.tpi --scheme tardis       # any registry name (id or label) works
//! tpi-run program.tpi --scheme hw --procs 32 --line-words 16 --tag-bits 4
//! tpi-run program.tpi --show-program        # echo the parsed IR
//! tpi-run program.tpi --show-marking        # dump the compiler's decisions
//! tpi-run program.tpi --verify              # panic if any hit observes stale data
//! tpi-run program.tpi --lint                # static lints only, no simulation
//! tpi-run program.tpi --profile             # machine-parsable stage profile on stdout
//! ```
//!
//! Scheme comparisons run through a [`Runner`], so the program is marked
//! and its trace interpreted once no matter how many schemes are listed.

use std::process::ExitCode;
use std::sync::Arc;
use tpi::tables::{pct, Table};
use tpi::{ExperimentConfig, Runner};
use tpi_compiler::{mark_program, OptLevel};
use tpi_ir::{display, parse_program, RefSite};
use tpi_mem::ReadKind;
use tpi_proto::{registry, SchemeId};

fn usage() -> ExitCode {
    let known: Vec<&str> = registry::global()
        .all()
        .iter()
        .map(|s| s.id().as_str())
        .collect();
    eprintln!(
        "usage: tpi-run <file> [--scheme {}|all] [--procs N]\n\
         \x20       [--line-words N] [--tag-bits N] [--cache-kb N] [--opt naive|intra|full]\n\
         \x20       [--show-program] [--show-marking] [--verify] [--export] [--lint] [--profile]",
        known.join("|")
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut schemes: Vec<SchemeId> = vec![SchemeId::TPI];
    let mut builder = ExperimentConfig::builder();
    let mut show_program = false;
    let mut show_marking = false;
    let mut export = false;
    let mut lint = false;
    let mut profile = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scheme" => {
                let Some(v) = it.next() else { return usage() };
                schemes = if v.eq_ignore_ascii_case("all") {
                    registry::global().all().iter().map(|s| s.id()).collect()
                } else {
                    // Registry names (id or label), case-insensitive; the
                    // error already lists everything registered.
                    match registry::global().lookup(v) {
                        Ok(s) => vec![s.id()],
                        Err(e) => {
                            eprintln!("{e}");
                            return ExitCode::FAILURE;
                        }
                    }
                };
            }
            "--procs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => builder = builder.procs(v),
                None => return usage(),
            },
            "--line-words" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => builder = builder.line_words(v),
                None => return usage(),
            },
            "--tag-bits" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => builder = builder.tag_bits(v),
                None => return usage(),
            },
            "--cache-kb" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) => builder = builder.cache_bytes(v * 1024),
                None => return usage(),
            },
            "--opt" => match it.next().map(String::as_str) {
                Some("naive") => builder = builder.opt_level(OptLevel::Naive),
                Some("intra") => builder = builder.opt_level(OptLevel::Intra),
                Some("full") => builder = builder.opt_level(OptLevel::Full),
                _ => return usage(),
            },
            "--verify" => builder = builder.verify_freshness(true),
            "--export" => export = true,
            "--lint" => lint = true,
            "--profile" => profile = true,
            "--show-program" => show_program = true,
            "--show-marking" => show_marking = true,
            other if !other.starts_with('-') && file.is_none() => {
                file = Some(other.to_owned());
            }
            _ => return usage(),
        }
    }
    let Some(file) = file else { return usage() };
    let cfg = match builder.build() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("invalid configuration: {e}");
            return ExitCode::FAILURE;
        }
    };
    let src = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = match parse_program(&src) {
        Ok(p) => Arc::new(p),
        Err(e) => {
            eprintln!("{file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if export {
        // Canonicalize: print the parsed program back in the textual
        // format and exit.
        print!("{}", tpi_ir::program_to_source(&program));
        return ExitCode::SUCCESS;
    }
    if lint {
        // Static analysis only: run the tpi-lint pass registry and exit
        // without simulating (the full oracle lives in `tpi-lint`).
        let options = tpi_analysis::LintOptions {
            level: cfg.opt_level,
            tag_bits: cfg.tag_bits,
        };
        let diagnostics = tpi_analysis::lint_program(&program, &options);
        for d in &diagnostics {
            println!("{}", d.human());
        }
        println!("{file}: {} diagnostic(s)", diagnostics.len());
        return ExitCode::SUCCESS;
    }
    if show_program {
        println!("{}", display::program_to_string(&program));
    }
    if show_marking {
        let marking = mark_program(&program, &cfg.compiler_options());
        let mut t = Table::new(format!("Compiler marking ({} analysis)", cfg.opt_level));
        t.headers(["site", "verdict"]);
        program.for_each_assign(|_, a| {
            for idx in 0..a.reads.len() as u32 {
                let site = RefSite { stmt: a.id, idx };
                let verdict = match marking.tpi_kind(site) {
                    ReadKind::Plain => "plain".to_owned(),
                    ReadKind::TimeRead { distance } => format!("time-read(d={distance})"),
                    other => other.to_string(),
                };
                t.row([format!("S{} read #{idx}", a.id.0), verdict]);
            }
        });
        println!("{t}");
        let s = marking.summary();
        println!(
            "{} shared reads: {} marked, {} plain ({} covered)\n",
            s.shared_reads, s.marked, s.plain, s.covered
        );
    }
    let runner = Runner::new();
    let run_started = std::time::Instant::now();
    let grid = match runner
        .grid()
        .program(&file, Arc::clone(&program))
        .base(cfg)
        .schemes(schemes.iter().copied())
        .run()
    {
        Ok(g) => g,
        Err(e) => {
            eprintln!("{file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let wall_nanos = u64::try_from(run_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    if profile {
        // Machine-parsable: one `profile ...` line per stage and counter,
        // then the profiled total and the measured wall clock around the
        // grid run (integration tests diff the two).
        let report = runner.profile();
        for s in &report.stages {
            println!(
                "profile stage={} calls={} nanos={}",
                s.path, s.calls, s.nanos
            );
        }
        for (name, value) in &report.counters {
            println!("profile counter={name} value={value}");
        }
        println!("profile total_nanos={}", report.total_nanos());
        println!("profile wall_nanos={wall_nanos}");
    }
    let mut t = Table::new(format!("{file} on {} processors", cfg.procs));
    t.headers([
        "scheme",
        "cycles",
        "miss rate",
        "avg miss lat",
        "net words",
        "lock waits",
    ]);
    let mut hot: Option<Table> = None;
    for &scheme in &schemes {
        let r = grid.at_program(&file, scheme, 0);
        t.row([
            scheme.label().to_string(),
            r.sim.total_cycles.to_string(),
            pct(r.sim.miss_rate()),
            format!("{:.1}", r.sim.avg_miss_latency()),
            r.sim.traffic.total_words().to_string(),
            r.sim.lock_wait_cycles.to_string(),
        ]);
        if scheme == SchemeId::TPI {
            hot = Some(tpi::report::hot_arrays(
                "Hot arrays under TPI (read misses by array)",
                r,
                8,
            ));
        }
    }
    println!("{t}");
    if let Some(hot) = hot {
        if !hot.is_empty() {
            println!("{hot}");
        }
    }
    ExitCode::SUCCESS
}
