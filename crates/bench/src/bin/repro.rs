//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all             # every experiment at paper scale
//! repro e3 e5           # selected experiments
//! repro --test e7       # test scale (fast, small inputs)
//! repro --csv out/ e3   # additionally write each table as CSV into out/
//! repro --serial        # one worker thread (for timing comparisons)
//! repro --fresh         # no artifact cache (the pre-engine baseline)
//! repro --timing        # memo-store hit rates + tpi-prof stage profile
//! repro --list          # list experiment ids
//! ```
//!
//! One [`Runner`] is shared across all requested experiments, so programs,
//! markings, and traces are built once and reused; per-experiment timing
//! and the final cache statistics go to stderr.

use std::process::ExitCode;
use tpi::Runner;
use tpi_bench::{run_experiment, ALL_IDS};
use tpi_workloads::Scale;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut serial = false;
    let mut fresh = false;
    let mut timing = false;
    let mut ids: Vec<String> = Vec::new();
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut take_csv_dir = false;
    for a in &args {
        if take_csv_dir {
            csv_dir = Some(std::path::PathBuf::from(a));
            take_csv_dir = false;
            continue;
        }
        match a.as_str() {
            "--test" => scale = Scale::Test,
            "--paper" => scale = Scale::Paper,
            "--serial" => serial = true,
            "--fresh" => fresh = true,
            "--timing" => timing = true,
            "--csv" => take_csv_dir = true,
            "--list" => {
                for id in ALL_IDS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(ALL_IDS.iter().map(|s| (*s).to_owned())),
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
            other => ids.push(other.to_owned()),
        }
    }
    if ids.is_empty() {
        eprintln!(
            "usage: repro [--test|--paper] [--serial] [--fresh] [--timing] [--list] \
             <experiment-id>... | all"
        );
        eprintln!("experiments: {}", ALL_IDS.join(" "));
        return ExitCode::FAILURE;
    }
    let mut runner = if serial {
        Runner::serial()
    } else {
        Runner::new()
    };
    if fresh {
        runner = runner.without_memoization();
    }
    let run_started = std::time::Instant::now();
    for id in ids {
        let started = std::time::Instant::now();
        match run_experiment(&id, scale, &runner) {
            Some(out) => {
                print!("{out}");
                if let Some(dir) = &csv_dir {
                    if let Err(e) = std::fs::create_dir_all(dir) {
                        eprintln!("cannot create {}: {e}", dir.display());
                        return ExitCode::FAILURE;
                    }
                    for (i, table) in out.tables.iter().enumerate() {
                        let path = dir.join(format!("{}_{}.csv", out.id, i));
                        if let Err(e) = std::fs::write(&path, table.to_csv()) {
                            eprintln!("cannot write {}: {e}", path.display());
                            return ExitCode::FAILURE;
                        }
                    }
                }
                eprintln!("[{} done in {:.1}s]", id, started.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                return ExitCode::FAILURE;
            }
        }
    }
    let stats = runner.stats();
    eprintln!(
        "[total {:.1}s on {} thread(s); traces {} built / {} reused; \
         markings {} built / {} reused; cells {} simulated / {} deduped]",
        run_started.elapsed().as_secs_f64(),
        runner.threads(),
        stats.traces_built,
        stats.trace_hits,
        stats.markings_built,
        stats.marking_hits,
        stats.cells_simulated,
        stats.cells_deduped,
    );
    if timing {
        eprintln!("[cache: {}]", stats.cache());
        let profile = runner.profile();
        if !profile.is_empty() {
            eprint!("{profile}");
        }
    }
    ExitCode::SUCCESS
}
