//! `perf` — the simulator performance baseline and regression gate.
//!
//! ```text
//! perf                                  # measure the pinned grid, write BENCH_sim.json
//! perf --reps 3                         # fewer repetitions (CI uses 3)
//! perf --out results/bench.json         # write elsewhere
//! perf --check BENCH_sim.json           # measure, compare, exit 1 outside the gate
//! perf --check BENCH_sim.json --tolerance 60
//! perf --scale test                     # tiny inputs (schema/smoke tests only)
//! ```
//!
//! The harness runs a **pinned** kernel × scheme × procs grid (chosen to
//! cover the simulator's hot paths: TPI's per-word timetag machinery, the
//! full-map directory, and SC's invalidation storms) `reps` times. At the
//! default paper scale the grid also carries two 64-processor
//! `--scale large` cells (the large-scale replay path of EXPERIMENTS.md
//! E24), and report mode appends an informational `sharding` section
//! comparing serial vs sharded replay on prebuilt 64/256-processor
//! traces — see [`measure_sharding`]. Every
//! repetition of every cell is a *fresh, serial, unmemoized* pipeline run —
//! build → mark → interpret → simulate — so the numbers measure the engine,
//! not the artifact cache. Per cell it reports the median and p95 wall time
//! (nearest-rank on the sorted repetitions) and `cells_per_sec`
//! (`1 / median`), plus an aggregate tpi-prof stage/counter profile summed
//! over every run, and writes the whole thing as schema-versioned JSON.
//!
//! `--check` re-measures the same grid and compares the **grid-total**
//! median against the committed baseline's `totals.median_wall_ms`: the run
//! fails if the ratio falls outside `[1/(1+t), 1+t]` (default tolerance
//! `t` = 40%, generous on purpose — CI machines are noisy). Per-cell ratios
//! are printed for attribution but are informational only: individual cells
//! run for tens of milliseconds and their medians swing far more under CI
//! scheduler noise than the 20-cell total does. Structural mismatches
//! (unknown schema, wrong scale, missing or extra cells) always fail.
//! After an intentional performance change, regenerate the baseline and
//! commit the new file.

use std::process::ExitCode;
use std::time::Instant;
use tpi::{ExperimentConfig, ProfileReport, Runner};
use tpi_proto::{build_engine, SchemeId};
use tpi_serve::json::{parse, Json};
use tpi_sim::{run_trace, run_trace_sharded, ShardOptions};
use tpi_workloads::{Kernel, Scale};

/// Format version of `BENCH_sim.json`. Bump on any incompatible layout
/// change and teach [`parse_baseline`] the migration.
///
/// v2: cells carry a per-cell `scale`, the paper grid grows two
/// large-scale 64-processor cells, and the report adds `host_cores` plus
/// an informational `sharding` section (serial vs sharded replay).
const SCHEMA_VERSION: u64 = 2;

/// The pinned measurement grid. Deliberately small (20 cells): wide enough
/// to exercise TPI, the hardware directory, software-flush SC, Tardis's
/// lease machinery, and the hybrid update path at two machine sizes, small
/// enough that `reps` repetitions stay inside a CI smoke-job budget.
const KERNELS: [Kernel; 2] = [Kernel::Ocean, Kernel::Flo52];
const SCHEMES: [SchemeId; 5] = [
    SchemeId::SC,
    SchemeId::TPI,
    SchemeId::FULL_MAP,
    SchemeId::TARDIS,
    SchemeId::HYBRID,
];
const PROCS: [u32; 2] = [8, 16];

/// Large-scale serial cells appended to the paper grid (and its gate):
/// one kernel, the two cheapest schemes, 64 processors at
/// [`Scale::Large`]. These keep the 64-processor replay path on the
/// regression radar without blowing the CI smoke budget; the 256-processor
/// points live in the informational [`measure_sharding`] section.
const LARGE_KERNEL: Kernel = Kernel::Ocean;
const LARGE_SCHEMES: [SchemeId; 2] = [SchemeId::SC, SchemeId::TPI];
const LARGE_PROCS: u32 = 64;

/// Replay-shard count used by the sharding comparison section.
const SHARDS: usize = 8;

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Paper => "paper",
        Scale::Test => "test",
        Scale::Large => "large",
    }
}

/// The pinned (kernel, scheme, procs, scale) cell list for one run.
fn grid(scale: Scale) -> Vec<(Kernel, SchemeId, u32, Scale)> {
    let mut g = Vec::new();
    for kernel in KERNELS {
        for scheme in SCHEMES {
            for procs in PROCS {
                g.push((kernel, scheme, procs, scale));
            }
        }
    }
    // The large-scale cells ride the paper grid only: `--scale test` runs
    // must stay smoke-test sized.
    if scale == Scale::Paper {
        for scheme in LARGE_SCHEMES {
            g.push((LARGE_KERNEL, scheme, LARGE_PROCS, Scale::Large));
        }
    }
    g
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: perf [--reps N] [--out PATH] [--check BASELINE] [--tolerance PCT] \
         [--scale paper|test]"
    );
    ExitCode::FAILURE
}

/// One measured grid cell.
struct CellReport {
    kernel: &'static str,
    scheme: &'static str,
    procs: u32,
    scale: &'static str,
    /// Sorted per-repetition wall times, milliseconds.
    wall_ms: Vec<f64>,
    /// Events the simulator replayed in one repetition (identical across
    /// repetitions — the pipeline is deterministic).
    sim_events: u64,
}

impl CellReport {
    fn median_ms(&self) -> f64 {
        nearest_rank(&self.wall_ms, 0.5)
    }
    fn p95_ms(&self) -> f64 {
        nearest_rank(&self.wall_ms, 0.95)
    }
    fn cells_per_sec(&self) -> f64 {
        let m = self.median_ms();
        if m > 0.0 {
            1000.0 / m
        } else {
            0.0
        }
    }
    fn key(&self) -> String {
        format!(
            "{}/{}/p{}/{}",
            self.kernel, self.scheme, self.procs, self.scale
        )
    }
}

/// Nearest-rank quantile of an ascending-sorted sample.
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Merges one run's profile into the aggregate (summing nanos, calls, and
/// counter values per key).
fn merge_profile(total: &mut ProfileReport, run: &ProfileReport) {
    for s in &run.stages {
        match total.stages.iter_mut().find(|t| t.path == s.path) {
            Some(t) => {
                t.nanos = t.nanos.saturating_add(s.nanos);
                t.calls = t.calls.saturating_add(s.calls);
            }
            None => total.stages.push(s.clone()),
        }
    }
    for (name, v) in &run.counters {
        match total.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, t)) => *t = t.saturating_add(*v),
            None => total.counters.push((name.clone(), *v)),
        }
    }
}

fn measure(scale: Scale, reps: usize) -> (Vec<CellReport>, Vec<f64>, ProfileReport) {
    let mut cells = Vec::new();
    let mut rep_totals_ms = vec![0.0_f64; reps];
    let mut profile = ProfileReport::default();
    for (kernel, scheme, procs, cell_scale) in grid(scale) {
        let cfg = ExperimentConfig::builder()
            .scheme(scheme)
            .procs(procs)
            .build()
            .expect("the pinned grid is valid");
        let mut wall_ms = Vec::with_capacity(reps);
        let mut sim_events = 0;
        for (rep, total) in rep_totals_ms.iter_mut().enumerate() {
            // A fresh serial runner per repetition: no memoization
            // across reps or sibling cells, no thread-pool jitter.
            let runner = Runner::serial();
            let started = Instant::now();
            let result = runner
                .run_kernel(kernel, cell_scale, &cfg)
                .unwrap_or_else(|e| panic!("{kernel:?}: {e}"));
            let elapsed = started.elapsed().as_secs_f64() * 1e3;
            wall_ms.push(elapsed);
            *total += elapsed;
            if rep == 0 {
                sim_events = result.sim.host.events;
                merge_profile(&mut profile, &runner.profile());
            }
        }
        wall_ms.sort_by(f64::total_cmp);
        let cell = CellReport {
            kernel: kernel.name(),
            scheme: scheme.label(),
            procs,
            scale: scale_name(cell_scale),
            wall_ms,
            sim_events,
        };
        eprintln!(
            "[{:<24} median {:>8.2} ms  p95 {:>8.2} ms  {} events]",
            cell.key(),
            cell.median_ms(),
            cell.p95_ms(),
            cell.sim_events,
        );
        cells.push(cell);
    }
    rep_totals_ms.sort_by(f64::total_cmp);
    profile
        .stages
        .sort_by(|a, b| b.nanos.cmp(&a.nanos).then_with(|| a.path.cmp(&b.path)));
    (cells, rep_totals_ms, profile)
}

/// One serial-vs-sharded replay comparison on a prebuilt trace.
struct ShardCell {
    kernel: &'static str,
    scheme: &'static str,
    procs: u32,
    /// Sorted per-repetition serial replay times, milliseconds.
    serial_ms: Vec<f64>,
    /// Sorted per-repetition sharded replay times, milliseconds.
    sharded_ms: Vec<f64>,
    sim_events: u64,
}

impl ShardCell {
    fn speedup(&self) -> f64 {
        let sharded = nearest_rank(&self.sharded_ms, 0.5);
        if sharded > 0.0 {
            nearest_rank(&self.serial_ms, 0.5) / sharded
        } else {
            0.0
        }
    }
}

/// Measures the sharded replay loop against the serial one on prebuilt
/// large-scale traces (the pipeline front half is deliberately excluded:
/// sharding only changes the replay loop). Informational — the `--check`
/// gate never re-measures this section; the speedup here documents the
/// scan-free per-shard replay win, which holds even on a single host core
/// (serial replay re-scans all `P` processor clocks per event, a sharded
/// sync-free epoch replays each processor's run flat).
fn measure_sharding(reps: usize) -> Vec<ShardCell> {
    let mut out = Vec::new();
    for procs in [64_u32, 256] {
        for scheme in LARGE_SCHEMES {
            let cfg = ExperimentConfig::builder()
                .scheme(scheme)
                .procs(procs)
                .build()
                .expect("the sharding grid is valid");
            let program = LARGE_KERNEL.build(Scale::Large);
            let marking = tpi_compiler::mark_program(&program, &cfg.compiler_options());
            let trace = tpi_trace::generate_trace(&program, &marking, &cfg.trace_options())
                .expect("large-scale kernels are race-free");
            let engine_cfg = cfg.engine_config(trace.layout.total_words());
            let shard_opts = ShardOptions {
                shards: SHARDS,
                ..ShardOptions::default()
            };
            let mut serial_ms = Vec::with_capacity(reps);
            let mut sharded_ms = Vec::with_capacity(reps);
            let mut sim_events = 0;
            for _ in 0..reps {
                let mut engine = build_engine(scheme, engine_cfg.clone());
                let started = Instant::now();
                let serial = run_trace(&trace, engine.as_mut(), &cfg.sim_options());
                serial_ms.push(started.elapsed().as_secs_f64() * 1e3);
                let started = Instant::now();
                let sharded =
                    run_trace_sharded(&trace, scheme, &engine_cfg, &cfg.sim_options(), &shard_opts);
                sharded_ms.push(started.elapsed().as_secs_f64() * 1e3);
                assert_eq!(
                    serial.total_cycles, sharded.total_cycles,
                    "sharded replay must stay bit-identical"
                );
                sim_events = serial.host.events;
            }
            serial_ms.sort_by(f64::total_cmp);
            sharded_ms.sort_by(f64::total_cmp);
            let cell = ShardCell {
                kernel: LARGE_KERNEL.name(),
                scheme: scheme.label(),
                procs,
                serial_ms,
                sharded_ms,
                sim_events,
            };
            eprintln!(
                "[shard {}/{}/p{procs}  serial {:>8.2} ms  sharded {:>8.2} ms  {:.2}x]",
                cell.kernel,
                cell.scheme,
                nearest_rank(&cell.serial_ms, 0.5),
                nearest_rank(&cell.sharded_ms, 0.5),
                cell.speedup(),
            );
            out.push(cell);
        }
    }
    out
}

/// Rounds to 3 decimal places so the committed file stays diff-friendly.
fn ms(v: f64) -> Json {
    Json::Num((v * 1e3).round() / 1e3)
}

/// Host cores visible to this process (recorded so a committed sharding
/// speedup can be read in context).
fn host_cores() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1)
}

fn render_report(
    scale: Scale,
    reps: usize,
    cells: &[CellReport],
    rep_totals_ms: &[f64],
    profile: &ProfileReport,
    sharding: &[ShardCell],
) -> String {
    let cell_objs: Vec<Json> = cells
        .iter()
        .map(|c| {
            Json::obj([
                ("kernel", Json::from(c.kernel)),
                ("scheme", Json::from(c.scheme)),
                ("procs", Json::from(c.procs)),
                ("scale", Json::from(c.scale)),
                ("median_wall_ms", ms(c.median_ms())),
                ("p95_wall_ms", ms(c.p95_ms())),
                ("cells_per_sec", ms(c.cells_per_sec())),
                ("sim_events", Json::from(c.sim_events)),
            ])
        })
        .collect();
    let median_total = nearest_rank(rep_totals_ms, 0.5);
    #[allow(clippy::cast_precision_loss)]
    let total_cells_per_sec = if median_total > 0.0 {
        cells.len() as f64 * 1000.0 / median_total
    } else {
        0.0
    };
    let stage_objs: Vec<Json> = profile
        .stages
        .iter()
        .map(|s| {
            Json::obj([
                ("stage", Json::from(s.path.as_str())),
                ("calls", Json::from(s.calls)),
                ("nanos", Json::from(s.nanos)),
            ])
        })
        .collect();
    let counter_objs: Vec<Json> = profile
        .counters
        .iter()
        .map(|(name, v)| {
            Json::obj([
                ("counter", Json::from(name.as_str())),
                ("value", Json::from(*v)),
            ])
        })
        .collect();
    let shard_objs: Vec<Json> = sharding
        .iter()
        .map(|s| {
            Json::obj([
                ("kernel", Json::from(s.kernel)),
                ("scheme", Json::from(s.scheme)),
                ("procs", Json::from(s.procs)),
                ("serial_median_wall_ms", ms(nearest_rank(&s.serial_ms, 0.5))),
                (
                    "sharded_median_wall_ms",
                    ms(nearest_rank(&s.sharded_ms, 0.5)),
                ),
                ("speedup", ms(s.speedup())),
                ("sim_events", Json::from(s.sim_events)),
            ])
        })
        .collect();
    let shard_serial_total: f64 = sharding
        .iter()
        .map(|s| nearest_rank(&s.serial_ms, 0.5))
        .sum();
    let shard_sharded_total: f64 = sharding
        .iter()
        .map(|s| nearest_rank(&s.sharded_ms, 0.5))
        .sum();
    let shard_speedup = if shard_sharded_total > 0.0 {
        shard_serial_total / shard_sharded_total
    } else {
        0.0
    };
    let doc = Json::obj([
        ("schema_version", Json::from(SCHEMA_VERSION)),
        ("generator", Json::from("tpi-bench perf")),
        ("scale", Json::from(scale_name(scale))),
        ("reps", Json::from(reps)),
        ("host_cores", Json::from(host_cores())),
        ("cells", Json::Arr(cell_objs)),
        (
            "totals",
            Json::obj([
                ("cells", Json::from(cells.len())),
                ("median_wall_ms", ms(median_total)),
                ("p95_wall_ms", ms(nearest_rank(rep_totals_ms, 0.95))),
                ("cells_per_sec", ms(total_cells_per_sec)),
            ]),
        ),
        (
            // Serial vs sharded replay on prebuilt large-scale traces.
            // Informational: `--check` does not re-measure this section.
            "sharding",
            Json::obj([
                ("shards", Json::from(SHARDS)),
                ("cells", Json::Arr(shard_objs)),
                (
                    "totals",
                    Json::obj([
                        ("serial_median_wall_ms", ms(shard_serial_total)),
                        ("sharded_median_wall_ms", ms(shard_sharded_total)),
                        ("speedup", ms(shard_speedup)),
                    ]),
                ),
            ]),
        ),
        (
            "profile",
            Json::obj([
                ("stages", Json::Arr(stage_objs)),
                ("counters", Json::Arr(counter_objs)),
            ]),
        ),
    ]);
    // One cell per line: stable ordering, reviewable diffs.
    pretty(&doc, 0)
}

/// A small fixed-shape pretty-printer: objects and arrays of objects break
/// across lines, leaf objects (no nested containers) render inline.
fn pretty(v: &Json, indent: usize) -> String {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    match v {
        Json::Obj(members) if members.iter().any(|(_, m)| is_container(m)) => {
            let body: Vec<String> = members
                .iter()
                .map(|(k, m)| format!("{inner}\"{k}\": {}", pretty(m, indent + 1)))
                .collect();
            format!("{{\n{}\n{pad}}}", body.join(",\n"))
        }
        Json::Arr(items) if !items.is_empty() => {
            let body: Vec<String> = items
                .iter()
                .map(|m| format!("{inner}{}", pretty(m, indent + 1)))
                .collect();
            format!("[\n{}\n{pad}]", body.join(",\n"))
        }
        other => other.render(),
    }
}

fn is_container(v: &Json) -> bool {
    matches!(v, Json::Obj(_)) || matches!(v, Json::Arr(items) if !items.is_empty())
}

/// A baseline cell parsed back out of `BENCH_sim.json`.
struct BaselineCell {
    key: String,
    median_wall_ms: f64,
}

fn parse_baseline(text: &str) -> Result<(String, f64, Vec<BaselineCell>), String> {
    let doc = parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing schema_version")?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} unsupported (this binary reads {SCHEMA_VERSION})"
        ));
    }
    let scale = doc
        .get("scale")
        .and_then(Json::as_str)
        .ok_or("missing scale")?
        .to_owned();
    let total_median = doc
        .get("totals")
        .and_then(|t| t.get("median_wall_ms"))
        .and_then(Json::as_f64)
        .ok_or("missing totals.median_wall_ms")?;
    let cells = doc
        .get("cells")
        .and_then(Json::as_array)
        .ok_or("missing cells array")?;
    let mut out = Vec::with_capacity(cells.len());
    for c in cells {
        let kernel = c
            .get("kernel")
            .and_then(Json::as_str)
            .ok_or("cell.kernel")?;
        let scheme = c
            .get("scheme")
            .and_then(Json::as_str)
            .ok_or("cell.scheme")?;
        let procs = c.get("procs").and_then(Json::as_u64).ok_or("cell.procs")?;
        let cell_scale = c.get("scale").and_then(Json::as_str).ok_or("cell.scale")?;
        let median = c
            .get("median_wall_ms")
            .and_then(Json::as_f64)
            .ok_or("cell.median_wall_ms")?;
        out.push(BaselineCell {
            key: format!("{kernel}/{scheme}/p{procs}/{cell_scale}"),
            median_wall_ms: median,
        });
    }
    Ok((scale, total_median, out))
}

fn check(
    baseline_path: &str,
    scale: Scale,
    cells: &[CellReport],
    grid_median_ms: f64,
    tolerance: f64,
) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (base_scale, base_total_ms, baseline) = match parse_baseline(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let want_scale = scale_name(scale);
    if base_scale != want_scale {
        eprintln!("{baseline_path}: baseline is scale={base_scale}, this run is {want_scale}");
        return ExitCode::FAILURE;
    }
    let hi = 1.0 + tolerance;
    let lo = 1.0 / hi;
    let mut structural = 0;
    // Per-cell ratios: attribution only. Single cells are too noisy on a
    // shared CI core to gate on; the grid total below is authoritative.
    for cell in cells {
        let Some(base) = baseline.iter().find(|b| b.key == cell.key()) else {
            eprintln!("GATE {}: not in baseline — regenerate it", cell.key());
            structural += 1;
            continue;
        };
        let ratio = if base.median_wall_ms > 0.0 {
            cell.median_ms() / base.median_wall_ms
        } else {
            f64::INFINITY
        };
        let note = if ratio > hi {
            "slower (informational)"
        } else if ratio < lo {
            "faster (informational)"
        } else {
            "ok"
        };
        eprintln!(
            "CELL {:<24} baseline {:>8.2} ms  now {:>8.2} ms  ratio {:.2}  {note}",
            cell.key(),
            base.median_wall_ms,
            cell.median_ms(),
            ratio,
        );
    }
    for base in &baseline {
        if !cells.iter().any(|c| c.key() == base.key) {
            eprintln!("GATE {}: in baseline but not measured", base.key);
            structural += 1;
        }
    }
    if structural > 0 {
        eprintln!("perf gate FAILED: {structural} cell-set mismatch(es) — regenerate the baseline");
        return ExitCode::FAILURE;
    }
    let total_ratio = if base_total_ms > 0.0 {
        grid_median_ms / base_total_ms
    } else {
        f64::INFINITY
    };
    eprintln!(
        "GATE grid total: baseline {base_total_ms:.1} ms  now {grid_median_ms:.1} ms  \
         ratio {total_ratio:.2}  (gate ±{:.0}%)",
        tolerance * 100.0
    );
    if total_ratio > hi {
        eprintln!("perf gate FAILED: grid total regressed beyond the tolerance");
        ExitCode::FAILURE
    } else {
        if total_ratio < lo {
            // Improvements don't fail the gate (a faster CI machine would
            // flap it), but a stale baseline weakens regression detection.
            eprintln!(
                "perf gate NOTE: grid total improved beyond the tolerance — \
                 regenerate BENCH_sim.json so the gate tracks the new reality"
            );
        }
        eprintln!("perf gate passed");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut reps = 5_usize;
    let mut out_path = "BENCH_sim.json".to_owned();
    let mut check_path: Option<String> = None;
    let mut tolerance = 0.40_f64;
    let mut scale = Scale::Paper;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--reps" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => reps = v,
                _ => return usage(),
            },
            "--out" => match it.next() {
                Some(v) => out_path.clone_from(v),
                None => return usage(),
            },
            "--check" => match it.next() {
                Some(v) => check_path = Some(v.clone()),
                None => return usage(),
            },
            "--tolerance" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => tolerance = v / 100.0,
                _ => return usage(),
            },
            "--scale" => match it.next().map(String::as_str) {
                Some("paper") => scale = Scale::Paper,
                Some("test") => scale = Scale::Test,
                Some("large") => scale = Scale::Large,
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    let (cells, rep_totals_ms, profile) = measure(scale, reps);
    eprintln!(
        "[grid total: median {:.1} ms over {reps} rep(s)]",
        nearest_rank(&rep_totals_ms, 0.5)
    );
    if let Some(baseline) = check_path {
        let grid_median_ms = nearest_rank(&rep_totals_ms, 0.5);
        return check(&baseline, scale, &cells, grid_median_ms, tolerance);
    }
    // Sharding comparison: report mode only (the gate never re-measures
    // it), and only at the committed paper scale.
    let sharding = if scale == Scale::Paper {
        measure_sharding(reps)
    } else {
        Vec::new()
    };
    let report = render_report(scale, reps, &cells, &rep_totals_ms, &profile, &sharding);
    if let Err(e) = std::fs::write(&out_path, report + "\n") {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("[wrote {out_path}]");
    ExitCode::SUCCESS
}
