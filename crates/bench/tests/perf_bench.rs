//! Integration tests for the perf-observability surface:
//!
//! * a golden-schema test pinning the shape of the committed
//!   `BENCH_sim.json` baseline (so `tpi-bench perf --check` and external
//!   consumers can rely on the fields existing), and
//! * a reconciliation test that the `tpi-run --profile` stage accounting
//!   actually adds up to the measured wall clock around the grid run.

use std::path::PathBuf;
use std::process::Command;
use tpi_serve::json::{parse, Json};

/// Path to the repository root (two levels up from the bench crate).
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

/// The committed benchmark baseline must keep the schema that
/// `tpi-bench perf --check` and the E-perf appendix document: any field
/// rename or removal here is a breaking change that needs a
/// `schema_version` bump and a regenerated baseline.
#[test]
fn bench_baseline_matches_golden_schema() {
    let path = repo_root().join("BENCH_sim.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let doc = parse(&text).expect("BENCH_sim.json parses as JSON");

    assert_eq!(
        doc.get("schema_version").and_then(Json::as_u64),
        Some(2),
        "schema_version pin"
    );
    assert_eq!(
        doc.get("generator").and_then(Json::as_str),
        Some("tpi-bench perf")
    );
    let scale = doc.get("scale").and_then(Json::as_str).expect("scale");
    assert!(!scale.is_empty());
    assert!(doc.get("reps").and_then(Json::as_u64).expect("reps") >= 1);
    assert!(
        doc.get("host_cores")
            .and_then(Json::as_u64)
            .expect("host_cores")
            >= 1
    );

    // Every cell carries the full measurement record.
    let cells = doc
        .get("cells")
        .and_then(Json::as_array)
        .expect("cells array");
    assert_eq!(
        cells.len(),
        22,
        "pinned 2 kernels x 5 schemes x 2 procs, plus 2 large-scale cells"
    );
    for cell in cells {
        for key in ["kernel", "scheme", "scale"] {
            assert!(
                cell.get(key).and_then(Json::as_str).is_some(),
                "cell.{key} is a string"
            );
        }
        assert!(cell.get("procs").and_then(Json::as_u64).is_some());
        for key in ["median_wall_ms", "p95_wall_ms", "cells_per_sec"] {
            let v = cell.get(key).and_then(Json::as_f64).expect(key);
            assert!(v.is_finite() && v > 0.0, "cell.{key} positive, got {v}");
        }
        assert!(
            cell.get("sim_events")
                .and_then(Json::as_u64)
                .expect("sim_events")
                > 0
        );
    }
    // The large-scale 64-processor cells are part of the gated grid.
    let large: Vec<_> = cells
        .iter()
        .filter(|c| c.get("scale").and_then(Json::as_str) == Some("large"))
        .collect();
    assert_eq!(large.len(), 2, "two 64-processor large-scale cells");
    for c in &large {
        assert_eq!(c.get("procs").and_then(Json::as_u64), Some(64));
    }

    // The grid-total block is what the CI perf gate compares against.
    let totals = doc.get("totals").expect("totals");
    assert_eq!(totals.get("cells").and_then(Json::as_u64), Some(22));
    for key in ["median_wall_ms", "p95_wall_ms", "cells_per_sec"] {
        let v = totals.get(key).and_then(Json::as_f64).expect(key);
        assert!(v.is_finite() && v > 0.0);
    }

    // The sharding section documents the serial-vs-sharded replay win on
    // prebuilt large-scale traces (informational for the gate, but its
    // shape — and the committed >= 2x section speedup — is part of the
    // schema contract).
    let sharding = doc.get("sharding").expect("sharding");
    assert!(
        sharding
            .get("shards")
            .and_then(Json::as_u64)
            .expect("shards")
            >= 2
    );
    let shard_cells = sharding
        .get("cells")
        .and_then(Json::as_array)
        .expect("sharding.cells");
    assert!(!shard_cells.is_empty());
    for c in shard_cells {
        for key in ["serial_median_wall_ms", "sharded_median_wall_ms", "speedup"] {
            let v = c.get(key).and_then(Json::as_f64).expect(key);
            assert!(v.is_finite() && v > 0.0, "sharding cell {key}");
        }
        assert!(c.get("procs").and_then(Json::as_u64).expect("procs") >= 64);
    }
    let speedup = sharding
        .get("totals")
        .and_then(|t| t.get("speedup"))
        .and_then(Json::as_f64)
        .expect("sharding.totals.speedup");
    assert!(
        speedup >= 2.0,
        "committed sharding section speedup {speedup} < 2x"
    );

    // Stage/counter attribution rides along for cross-machine triage.
    let profile = doc.get("profile").expect("profile");
    let stages = profile
        .get("stages")
        .and_then(Json::as_array)
        .expect("profile.stages");
    let stage_names: Vec<&str> = stages
        .iter()
        .filter_map(|s| s.get("stage").and_then(Json::as_str))
        .collect();
    for want in ["prepare", "prepare/interp", "simulate", "simulate/replay"] {
        assert!(stage_names.contains(&want), "profile stage {want} present");
    }
    for s in stages {
        assert!(s.get("calls").and_then(Json::as_u64).is_some());
        assert!(s.get("nanos").and_then(Json::as_u64).is_some());
    }
    let counters = profile
        .get("counters")
        .and_then(Json::as_array)
        .expect("profile.counters");
    let counter_names: Vec<&str> = counters
        .iter()
        .filter_map(|c| c.get("counter").and_then(Json::as_str))
        .collect();
    for want in ["sim_events", "sim_epochs", "interp_epochs"] {
        assert!(
            counter_names.contains(&want),
            "profile counter {want} present"
        );
    }
}

/// `tpi-run --profile` prints one `profile key=value ...` line per stage
/// and counter plus `total_nanos` (sum of top-level stages) and
/// `wall_nanos` (measured around the grid run). With the runner pinned to
/// one thread the two must agree closely: the profiled stages are the
/// whole pipeline, so anything beyond a small orchestration overhead
/// means a stage is escaping attribution.
#[test]
fn profile_output_reconciles_with_wall_clock() {
    let program = repo_root().join("examples/programs/stencil.tpi");
    let out = Command::new(env!("CARGO_BIN_EXE_tpi-run"))
        .arg(&program)
        .args(["--scheme", "all", "--profile"])
        .env("TPI_THREADS", "1")
        .output()
        .expect("run tpi-run");
    assert!(
        out.status.success(),
        "tpi-run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");

    let mut stage_nanos: Vec<(String, u64)> = Vec::new();
    let mut counters = 0usize;
    let mut total_nanos = None;
    let mut wall_nanos = None;
    for line in stdout.lines().filter(|l| l.starts_with("profile ")) {
        let fields: Vec<(&str, &str)> = line["profile ".len()..]
            .split_whitespace()
            .filter_map(|kv| kv.split_once('='))
            .collect();
        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.to_string())
        };
        if let Some(stage) = get("stage") {
            let nanos: u64 = get("nanos").expect("nanos").parse().expect("nanos u64");
            let calls: u64 = get("calls").expect("calls").parse().expect("calls u64");
            assert!(calls > 0, "stage {stage} has zero calls");
            stage_nanos.push((stage, nanos));
        } else if get("counter").is_some() {
            counters += 1;
        } else if let Some(v) = get("total_nanos") {
            total_nanos = Some(v.parse::<u64>().expect("total u64"));
        } else if let Some(v) = get("wall_nanos") {
            wall_nanos = Some(v.parse::<u64>().expect("wall u64"));
        }
    }

    let total = total_nanos.expect("total_nanos line") as f64;
    let wall = wall_nanos.expect("wall_nanos line") as f64;
    assert!(counters > 0, "at least one counter line");
    let stages: Vec<&str> = stage_nanos.iter().map(|(s, _)| s.as_str()).collect();
    assert!(stages.contains(&"prepare"), "prepare stage present");
    assert!(stages.contains(&"simulate"), "simulate stage present");

    // The printed total must equal the sum of top-level stages...
    let top_sum: u64 = stage_nanos
        .iter()
        .filter(|(s, _)| !s.contains('/'))
        .map(|(_, n)| n)
        .sum();
    assert_eq!(top_sum as f64, total, "total_nanos is the top-level sum");

    // ...and account for the measured wall clock to within 5%.
    assert!(
        total <= wall,
        "single-threaded stage time {total} exceeds wall {wall}"
    );
    assert!(
        total >= 0.95 * wall,
        "profiled stages cover only {:.1}% of wall time ({total} of {wall} ns)",
        100.0 * total / wall
    );
}
