//! Interconnection-network model for the TPI coherence study.
//!
//! The paper simulates network delays "using an analytical delay model for
//! indirect multistage networks" (Kruskal & Snir \[24\]). This crate
//! implements that model: a buffered multistage network of `k x k`
//! switches with `ceil(log_k P)` stages, where the expected per-stage
//! waiting time under offered load `rho` is
//!
//! ```text
//! wait(rho) = rho * (1 - 1/k) / (2 * (1 - rho))
//! ```
//!
//! so a message of `w` payload words traverses in
//! `stages * stage_cycles * (1 + wait(rho)) + (1 + w) * word_cycles`
//! (one header word plus payload, pipelined at `word_cycles` per word).
//!
//! The offered load is estimated from the traffic the protocols actually
//! inject, one epoch behind (the simulator calls [`Network::end_epoch`] at
//! each barrier), avoiding a fixed-point iteration while still letting
//! write-heavy epochs slow their successors — the effect behind the paper's
//! TRFD network-traffic observations.
//!
//! # Example
//!
//! ```
//! use tpi_net::{Network, NetworkConfig, TrafficClass};
//!
//! let mut net = Network::new(NetworkConfig::paper_default(16));
//! // Unloaded line fetch of a 4-word line: the paper's 100-cycle base miss.
//! assert_eq!(net.line_fetch(4), 100);
//! net.record(TrafficClass::Read, 4);
//! ```

#![warn(missing_docs)]

use tpi_mem::Cycle;

/// Categories of network traffic, as broken down in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Read requests and data replies.
    Read,
    /// Write-throughs and write-backs.
    Write,
    /// Coherence transactions (invalidations, acks, directory forwards).
    Coherence,
}

impl TrafficClass {
    /// All classes, for iteration.
    pub const ALL: [TrafficClass; 3] = [
        TrafficClass::Read,
        TrafficClass::Write,
        TrafficClass::Coherence,
    ];

    fn index(self) -> usize {
        match self {
            TrafficClass::Read => 0,
            TrafficClass::Write => 1,
            TrafficClass::Coherence => 2,
        }
    }
}

impl std::fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrafficClass::Read => write!(f, "read"),
            TrafficClass::Write => write!(f, "write"),
            TrafficClass::Coherence => write!(f, "coherence"),
        }
    }
}

/// Cumulative traffic, per class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    messages: [u64; 3],
    words: [u64; 3],
}

impl TrafficStats {
    /// Messages sent in `class`.
    #[must_use]
    pub fn messages(&self, class: TrafficClass) -> u64 {
        self.messages[class.index()]
    }

    /// Words (header + payload) sent in `class`.
    #[must_use]
    pub fn words(&self, class: TrafficClass) -> u64 {
        self.words[class.index()]
    }

    /// Total words across classes.
    #[must_use]
    pub fn total_words(&self) -> u64 {
        self.words.iter().sum()
    }

    /// Total messages across classes.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum()
    }

    fn add(&mut self, class: TrafficClass, payload_words: u32) {
        self.messages[class.index()] += 1;
        self.words[class.index()] += 1 + u64::from(payload_words);
    }

    /// Adds `other`'s counters into `self` (used by the shard-parallel
    /// simulator to fold per-shard networks into one total).
    pub fn merge(&mut self, other: &TrafficStats) {
        for i in 0..self.messages.len() {
            self.messages[i] += other.messages[i];
            self.words[i] += other.words[i];
        }
    }
}

/// Physical parameters of the network and memory system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Number of processors (network ports).
    pub processors: u32,
    /// Switch degree `k`.
    pub switch_degree: u32,
    /// Cycles per switch stage, unloaded.
    pub stage_cycles: Cycle,
    /// Channel cycles per message word.
    pub word_cycles: Cycle,
    /// DRAM access time at the memory module.
    pub memory_cycles: Cycle,
    /// Remote cache (owner) access time on a three-hop dirty fetch.
    pub remote_cache_cycles: Cycle,
    /// Offered load is clamped below this to keep the model stable.
    pub max_rho: f64,
}

impl NetworkConfig {
    /// Parameters reproducing the paper's Figure 8 machine: the base miss
    /// latency of a 4-word line comes out at exactly 100 CPU cycles.
    #[must_use]
    pub fn paper_default(processors: u32) -> Self {
        NetworkConfig {
            processors,
            switch_degree: 2,
            stage_cycles: 1,
            word_cycles: 6,
            memory_cycles: 56,
            remote_cache_cycles: 30,
            max_rho: 0.95,
        }
    }

    /// Number of switch stages: `ceil(log_k P)`, at least 1.
    ///
    /// # Panics
    ///
    /// Panics if `processors == 0` or `switch_degree < 2`.
    #[must_use]
    pub fn stages(&self) -> u32 {
        assert!(self.processors > 0, "need at least one processor");
        assert!(self.switch_degree >= 2, "switch degree must be at least 2");
        let mut stages = 0;
        let mut reach = 1u64;
        while reach < u64::from(self.processors) {
            reach *= u64::from(self.switch_degree);
            stages += 1;
        }
        stages.max(1)
    }
}

/// The network: latency model plus traffic/load bookkeeping.
#[derive(Debug, Clone)]
pub struct Network {
    cfg: NetworkConfig,
    stats: TrafficStats,
    /// Words injected during the current epoch.
    epoch_words: u64,
    /// Offered load estimated from the previous epoch.
    rho: f64,
}

impl Network {
    /// A new, unloaded network.
    #[must_use]
    pub fn new(cfg: NetworkConfig) -> Self {
        let _ = cfg.stages(); // validate eagerly
        Network {
            cfg,
            stats: TrafficStats::default(),
            epoch_words: 0,
            rho: 0.0,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Current offered-load estimate.
    #[must_use]
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Kruskal–Snir expected waiting factor at the current load.
    #[must_use]
    pub fn wait_factor(&self) -> f64 {
        let k = f64::from(self.cfg.switch_degree);
        let rho = self.rho.min(self.cfg.max_rho);
        rho * (1.0 - 1.0 / k) / (2.0 * (1.0 - rho))
    }

    /// One-way latency of a message with `payload_words` of payload.
    #[must_use]
    pub fn msg_latency(&self, payload_words: u32) -> Cycle {
        let stages = f64::from(self.cfg.stages());
        let switch = stages * self.cfg.stage_cycles as f64 * (1.0 + self.wait_factor());
        let transfer = (1 + u64::from(payload_words)) * self.cfg.word_cycles;
        switch.round() as Cycle + transfer
    }

    /// Latency of a full line fetch: request, memory access, line reply.
    #[must_use]
    pub fn line_fetch(&self, line_words: u32) -> Cycle {
        self.msg_latency(0) + self.cfg.memory_cycles + self.msg_latency(line_words)
    }

    /// Latency of a single-word remote access (BASE scheme, bypass reads).
    #[must_use]
    pub fn word_fetch(&self) -> Cycle {
        self.msg_latency(0) + self.cfg.memory_cycles + self.msg_latency(1)
    }

    /// One network traversal plus a directory visit, a forward to the
    /// owning cache, the owner's cache access, and the line reply: the
    /// 3-hop directory path (requester → home → owner → requester).
    #[must_use]
    pub fn three_hop_fetch(&self, line_words: u32) -> Cycle {
        self.msg_latency(0)
            + self.cfg.memory_cycles
            + self.msg_latency(0)
            + self.cfg.remote_cache_cycles
            + self.msg_latency(line_words)
    }

    /// Records `payload_words` of injected traffic in `class`.
    pub fn record(&mut self, class: TrafficClass, payload_words: u32) {
        self.stats.add(class, payload_words);
        self.epoch_words += 1 + u64::from(payload_words);
    }

    /// Ends an epoch of `elapsed` cycles: folds the epoch's injected words
    /// into the load estimate for the next epoch.
    pub fn end_epoch(&mut self, elapsed: Cycle) {
        let words = self.epoch_words;
        self.end_epoch_as(words, elapsed);
    }

    /// Words injected since the last epoch end (for the shard-parallel
    /// simulator, which sums the accumulators of every shard's network
    /// before closing the epoch on each of them).
    #[must_use]
    pub fn epoch_words(&self) -> u64 {
        self.epoch_words
    }

    /// Ends an epoch of `elapsed` cycles as if `total_words` had been
    /// injected on this network. The shard-parallel simulator calls this
    /// on every shard with the *machine-wide* word total so all shards
    /// compute the identical load estimate; [`Network::end_epoch`] is the
    /// single-network special case.
    pub fn end_epoch_as(&mut self, total_words: u64, elapsed: Cycle) {
        self.epoch_words = 0;
        if elapsed == 0 {
            return;
        }
        // Per-port channel utilization: words * cycles-per-word spread over
        // P ports for `elapsed` cycles.
        let util = (total_words as f64 * self.cfg.word_cycles as f64)
            / (f64::from(self.cfg.processors) * elapsed as f64);
        self.rho = util.min(self.cfg.max_rho);
    }

    /// Cumulative traffic statistics.
    #[must_use]
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_count() {
        assert_eq!(NetworkConfig::paper_default(16).stages(), 4);
        assert_eq!(NetworkConfig::paper_default(17).stages(), 5);
        assert_eq!(NetworkConfig::paper_default(1).stages(), 1);
        let mut c = NetworkConfig::paper_default(64);
        c.switch_degree = 4;
        assert_eq!(c.stages(), 3);
    }

    #[test]
    fn paper_base_miss_latency_is_100() {
        let net = Network::new(NetworkConfig::paper_default(16));
        assert_eq!(net.line_fetch(4), 100);
        // Larger lines cost more; single words cost less.
        assert!(net.line_fetch(16) > 100);
        assert!(net.word_fetch() < 100);
    }

    #[test]
    fn load_raises_latency() {
        let mut net = Network::new(NetworkConfig::paper_default(16));
        let unloaded = net.line_fetch(4);
        // Inject heavy traffic, then close the epoch to update rho.
        for _ in 0..10_000 {
            net.record(TrafficClass::Write, 1);
        }
        net.end_epoch(10_000);
        assert!(net.rho() > 0.5, "rho = {}", net.rho());
        assert!(net.line_fetch(4) > unloaded);
    }

    #[test]
    fn rho_is_clamped() {
        let mut net = Network::new(NetworkConfig::paper_default(2));
        for _ in 0..100_000 {
            net.record(TrafficClass::Read, 16);
        }
        net.end_epoch(10);
        assert!(net.rho() <= 0.95);
        assert!(net.wait_factor().is_finite());
    }

    #[test]
    fn traffic_accounting_per_class() {
        let mut net = Network::new(NetworkConfig::paper_default(16));
        net.record(TrafficClass::Read, 4);
        net.record(TrafficClass::Read, 0);
        net.record(TrafficClass::Write, 1);
        net.record(TrafficClass::Coherence, 0);
        let s = net.stats();
        assert_eq!(s.messages(TrafficClass::Read), 2);
        assert_eq!(s.words(TrafficClass::Read), 6);
        assert_eq!(s.words(TrafficClass::Write), 2);
        assert_eq!(s.words(TrafficClass::Coherence), 1);
        assert_eq!(s.total_words(), 9);
        assert_eq!(s.total_messages(), 4);
    }

    #[test]
    fn end_epoch_resets_accumulator() {
        let mut net = Network::new(NetworkConfig::paper_default(16));
        net.record(TrafficClass::Read, 4);
        net.end_epoch(1000);
        let rho1 = net.rho();
        net.end_epoch(1000); // no traffic this epoch
        assert!(net.rho() < rho1 || rho1 == 0.0);
    }

    #[test]
    fn three_hop_exceeds_two_hop() {
        let net = Network::new(NetworkConfig::paper_default(16));
        assert!(net.three_hop_fetch(4) > net.line_fetch(4));
    }

    #[test]
    fn class_display() {
        assert_eq!(TrafficClass::Read.to_string(), "read");
        assert_eq!(TrafficClass::Coherence.to_string(), "coherence");
    }
}
