//! Property tests for the Kruskal–Snir network model: latencies must be
//! monotone in load, payload size, and machine size, and the load
//! estimator must stay within its clamp.

use tpi_net::{Network, NetworkConfig, TrafficClass};
use tpi_testkit::prelude::*;

proptest! {
    #[test]
    fn latency_monotone_in_payload(procs in 2u32..256, w1 in 0u32..32, w2 in 0u32..32) {
        let net = Network::new(NetworkConfig::paper_default(procs));
        let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        prop_assert!(net.msg_latency(lo) <= net.msg_latency(hi));
        prop_assert!(net.line_fetch(lo.max(1)) <= net.line_fetch(hi.max(1)));
    }

    #[test]
    fn latency_monotone_in_load(
        procs in 2u32..64,
        words in prop::collection::vec(0u32..16, 0..50),
    ) {
        let mut net = Network::new(NetworkConfig::paper_default(procs));
        let unloaded = net.line_fetch(4);
        for &w in &words {
            net.record(TrafficClass::Read, w);
        }
        net.end_epoch(100);
        prop_assert!(net.rho() <= 0.95);
        prop_assert!(net.line_fetch(4) >= unloaded);
        prop_assert!(net.wait_factor().is_finite());
        prop_assert!(net.wait_factor() >= 0.0);
    }

    #[test]
    fn stages_cover_machine(procs in 1u32..100_000, k in 2u32..9) {
        let mut cfg = NetworkConfig::paper_default(procs);
        cfg.switch_degree = k;
        let s = cfg.stages();
        prop_assert!(u64::from(k).pow(s) >= u64::from(procs));
        if s > 1 {
            prop_assert!(u64::from(k).pow(s - 1) < u64::from(procs));
        }
    }

    #[test]
    fn traffic_totals_are_consistent(
        msgs in prop::collection::vec((0usize..3, 0u32..16), 0..60),
    ) {
        let mut net = Network::new(NetworkConfig::paper_default(16));
        let mut words = 0u64;
        for &(c, w) in &msgs {
            net.record(TrafficClass::ALL[c], w);
            words += 1 + u64::from(w);
        }
        prop_assert_eq!(net.stats().total_messages(), msgs.len() as u64);
        prop_assert_eq!(net.stats().total_words(), words);
        let per_class: u64 = TrafficClass::ALL.iter().map(|&c| net.stats().words(c)).sum();
        prop_assert_eq!(per_class, words);
    }
}
