//! QCD2: lattice gauge theory (quantum chromodynamics).
//!
//! The coherence-relevant structure modelled here:
//!
//! * block-shifted neighbour updates: epoch `2t` updates link variables
//!   reading sites two processor-blocks away, so lines written dirty by
//!   one processor are consumed by another — the *migratory* pattern that
//!   drives the directory scheme to three-hop dirty fetches (the paper's
//!   elevated QCD2 average miss latency under HW);
//! * gather reads through a runtime index table (`G(f(i))`), the paper's
//!   canonical compile-time-unanalyzable subscript: the compiler must
//!   treat the read section as the whole array, producing the conservative
//!   markings whose cost the evaluation quantifies.

use crate::Scale;
use tpi_ir::{subs, Program, ProgramBuilder};

/// Builds the QCD2 kernel.
#[must_use]
pub fn build(scale: Scale) -> Program {
    let (sites, steps, gsize) = match scale {
        Scale::Test => (512i64, 2i64, 128u64),
        Scale::Paper => (8192, 4, 2048),
        // The lattice is one-dimensional: widening `sites` alone keeps
        // every DOALL far past 1024 iterations.
        Scale::Large => (16384, 8, 4096),
    };
    // Two processor-blocks at P=16: guarantees cross-processor consumption
    // under static block scheduling.
    let shift = sites / 8;
    let mut p = ProgramBuilder::new();
    let l = p.shared("L", [sites as u64]);
    let m = p.shared("M", [(sites + shift) as u64]);
    let g = p.shared("G", [gsize]);
    let main = p.proc("main", |f| {
        f.doall(0, sites - 1, |i, f| f.store(l.at(subs![i]), vec![], 2));
        f.doall(0, sites + shift - 1, |i, f| {
            f.store(m.at(subs![i]), vec![], 2)
        });
        f.doall(0, gsize as i64 - 1, |k, f| {
            f.store(g.at(subs![k]), vec![], 2)
        });
        f.serial(0, steps - 1, |_t, f| {
            // Link update: reads the neighbour two blocks away (migratory).
            f.doall(0, sites - 1, |i, f| {
                f.store(
                    l.at(subs![i]),
                    vec![l.at(subs![i]), m.at(subs![i + shift])],
                    3,
                );
            });
            // Gauge measurement: gathers through a runtime permutation.
            let gather = f.opaque();
            f.doall(0, sites - 1, |i, f| {
                f.store(m.at(subs![i]), vec![l.at(subs![i]), g.at(subs![gather])], 4);
            });
        });
    });
    p.finish(main).expect("QCD2 is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_compiler::{mark_program, CompilerOptions};
    use tpi_mem::ReadKind;
    use tpi_trace::{generate_trace, Event, TraceOptions};

    #[test]
    fn opaque_gathers_are_marked() {
        let prog = build(Scale::Test);
        let marking = mark_program(&prog, &CompilerOptions::default());
        let trace = generate_trace(&prog, &marking, &TraceOptions::default()).unwrap();
        // Find reads of the G array (it is the last declared: highest base
        // is fine to detect via marked kinds): at least `sites` marked
        // reads per measurement epoch must exist.
        let marked = trace
            .epochs
            .iter()
            .flat_map(|e| e.per_proc.iter().flatten())
            .filter(|ev| matches!(ev, Event::Read { kind, .. } if kind.is_marked()))
            .count();
        assert!(marked > 0);
    }

    #[test]
    fn gather_targets_are_spread_and_deterministic() {
        let prog = build(Scale::Test);
        let marking = mark_program(&prog, &CompilerOptions::default());
        let t1 = generate_trace(&prog, &marking, &TraceOptions::default()).unwrap();
        let t2 = generate_trace(&prog, &marking, &TraceOptions::default()).unwrap();
        let reads = |t: &tpi_trace::Trace| -> Vec<u64> {
            t.epochs
                .iter()
                .flat_map(|e| e.per_proc.iter().flatten())
                .filter_map(|ev| match ev {
                    Event::Read {
                        addr,
                        kind: ReadKind::TimeRead { .. },
                        ..
                    } => Some(addr.0),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(
            reads(&t1),
            reads(&t2),
            "opaque gathers must be reproducible"
        );
        let mut uniq = reads(&t1);
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() > 16, "gathers should spread over the table");
    }
}
