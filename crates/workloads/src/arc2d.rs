//! ARC2D: implicit-factorization 2-D aerodynamics (ADI).
//!
//! Alternating-direction implicit solvers sweep rows, then columns. The
//! coherence-relevant structure modelled here:
//!
//! * an x-sweep parallel over *rows* writing `R` from a row-local stencil
//!   of `Q`;
//! * a y-sweep parallel over *columns* writing `Q` from a column stencil
//!   of `R` — each column read touches exactly one word of a line some
//!   other processor wrote dirty a single epoch earlier. This alternation
//!   is the suite's strongest line-size/false-sharing stressor and its
//!   strongest producer/consumer inversion (every epoch, ownership of all
//!   data effectively transposes);
//! * a processor-private scratch vector in the y-sweep, exercising the
//!   private replication path.

use crate::Scale;
use tpi_ir::{subs, Program, ProgramBuilder};

/// Builds the ARC2D kernel.
#[must_use]
pub fn build(scale: Scale) -> Program {
    // `stride` thins the inner serial loops at `Large` scale so the DOALL
    // axis can reach 1024 rows/columns without a quadratic event blow-up.
    // The false-sharing signature is untouched: the y-sweep's column reads
    // still touch one word per line of rows other processors just wrote.
    let (n, steps, stride) = match scale {
        Scale::Test => (16i64, 2i64, 1i64),
        Scale::Paper => (96, 5, 1),
        Scale::Large => (1024, 2, 32),
    };
    let mut p = ProgramBuilder::new();
    let q = p.shared("Q", [n as u64, n as u64]);
    let r = p.shared("R", [n as u64, n as u64]);
    let d = p.private("D", [n as u64]);
    let main = p.proc("main", |f| {
        f.doall(0, n - 1, |i, f| {
            f.serial_step(0, n - 1, stride, |j, f| {
                f.store(q.at(subs![i, j]), vec![], 2)
            });
        });
        f.serial(0, steps - 1, |_t, f| {
            // x-sweep: rows of R from a row stencil of Q.
            f.doall(0, n - 1, |i, f| {
                f.serial_step(1, n - 2, stride, |j, f| {
                    f.store(
                        r.at(subs![i, j]),
                        vec![
                            q.at(subs![i, j - 1]),
                            q.at(subs![i, j]),
                            q.at(subs![i, j + 1]),
                        ],
                        4,
                    );
                });
                // Row edges so every R word is defined.
                f.store(r.at(subs![i, 0]), vec![q.at(subs![i, 0])], 2);
                f.store(
                    r.at(subs![i, tpi_ir::Affine::konst(n - 1)]),
                    vec![q.at(subs![i, n - 1])],
                    2,
                );
            });
            // y-sweep: columns of Q from a column stencil of R, via a
            // private tridiagonal scratch.
            f.doall(0, n - 1, |j, f| {
                f.serial_step(1, n - 2, stride, |i, f| {
                    f.store(
                        d.at(subs![i]),
                        vec![
                            r.at(subs![i - 1, j]),
                            r.at(subs![i, j]),
                            r.at(subs![i + 1, j]),
                        ],
                        3,
                    );
                    f.store(q.at(subs![i, j]), vec![d.at(subs![i])], 2);
                });
            });
        });
    });
    p.finish(main).expect("ARC2D is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_compiler::{mark_program, CompilerOptions};
    use tpi_trace::{generate_trace, TraceOptions};

    #[test]
    fn sweeps_alternate_and_trace() {
        let prog = build(Scale::Test);
        let m = mark_program(&prog, &CompilerOptions::default());
        let t = generate_trace(&prog, &m, &TraceOptions::default()).unwrap();
        assert_eq!(t.epochs.len(), 1 + 2 * 2);
        assert!(t.stats.marked_reads > 0);
    }

    #[test]
    fn column_reads_have_distance_one() {
        let prog = build(Scale::Test);
        let m = mark_program(&prog, &CompilerOptions::default());
        let s = m.summary();
        assert!(
            s.distance_histogram.contains_key(&1),
            "{:?}",
            s.distance_histogram
        );
    }
}
