//! OCEAN: two-dimensional ocean basin simulation.
//!
//! The original spends its time in 2-D FFTs. The coherence-relevant
//! structure modelled here:
//!
//! * row-local butterfly passes (each processor reads and writes only its
//!   own rows — the cache-friendly phase);
//! * transpose phases whose *column* reads stride across every other
//!   processor's freshly written rows: heavy cross-processor consumption
//!   with exactly one word used per cache line, the pattern that separates
//!   word-granular (TPI) from line-granular (directory) bookkeeping.

use crate::Scale;
use tpi_ir::{subs, Program, ProgramBuilder};

/// Builds the OCEAN kernel.
#[must_use]
pub fn build(scale: Scale) -> Program {
    // `stride` thins the inner serial loops at `Large` scale so the DOALL
    // axis can reach 1024+ rows without a quadratic event blow-up; the
    // butterfly/transpose sharing pattern is unchanged (`half` stays a
    // multiple of the stride so paired reads land on written words).
    let (n, steps, stride) = match scale {
        Scale::Test => (16i64, 2i64, 1i64),
        Scale::Paper => (128, 4, 1),
        Scale::Large => (1024, 2, 16),
    };
    let half = n / 2;
    let mut p = ProgramBuilder::new();
    let a = p.shared("A", [n as u64, n as u64]);
    let b = p.shared("B", [n as u64, n as u64]);
    let main = p.proc("main", |f| {
        f.doall(0, n - 1, |r, f| {
            f.serial_step(0, n - 1, stride, |c, f| {
                f.store(a.at(subs![r, c]), vec![], 2)
            });
        });
        f.serial(0, steps - 1, |_t, f| {
            // Butterfly pass within each row: B(r, c) pairs A(r, c) with
            // A(r, c + n/2).
            f.doall(0, n - 1, |r, f| {
                f.serial_step(0, half - 1, stride, |c, f| {
                    f.store(
                        b.at(subs![r, c]),
                        vec![
                            a.at(subs![r, c]),
                            a.at(subs![r, tpi_ir::Affine::var(c) + half]),
                        ],
                        3,
                    );
                    f.store(
                        b.at(subs![r, tpi_ir::Affine::var(c) + half]),
                        vec![
                            a.at(subs![r, c]),
                            a.at(subs![r, tpi_ir::Affine::var(c) + half]),
                        ],
                        3,
                    );
                });
            });
            // Transpose-consume: A(c, r) = f(B(r, c)) — column reads of B.
            f.doall(0, n - 1, |c, f| {
                f.serial_step(0, n - 1, stride, |r, f| {
                    f.store(a.at(subs![c, r]), vec![b.at(subs![r, c])], 2);
                });
            });
        });
    });
    p.finish(main).expect("OCEAN is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_compiler::{mark_program, CompilerOptions};
    use tpi_trace::{generate_trace, TraceOptions};

    #[test]
    fn transpose_reads_are_marked() {
        let prog = build(Scale::Test);
        let m = mark_program(&prog, &CompilerOptions::default());
        let s = m.summary();
        // B was written one epoch before the transpose consumes it.
        assert!(
            s.distance_histogram.contains_key(&1),
            "{:?}",
            s.distance_histogram
        );
    }

    #[test]
    fn trace_has_two_epochs_per_step_plus_init() {
        let prog = build(Scale::Test);
        let m = mark_program(&prog, &CompilerOptions::default());
        let t = generate_trace(&prog, &m, &TraceOptions::default()).unwrap();
        assert_eq!(t.epochs.len(), 1 + 2 * 2);
    }
}
