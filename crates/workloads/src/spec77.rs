//! SPEC77: spectral global weather model.
//!
//! The original alternates Legendre transforms and FFTs over latitude
//! bands. The coherence-relevant structure modelled here:
//!
//! * a coefficient table `P` initialized once and then **broadcast-read by
//!   every processor in every epoch** — under TPI a verified Time-Read
//!   re-stamps the word, so the table stays cached across the whole run
//!   (intertask locality), while SC must bypass on every single read: the
//!   starkest SC-vs-TPI separation in the suite;
//! * per-latitude accumulations into the spectral array `S` with row-local
//!   reuse of the field array `F` (friendly to every caching scheme).

use crate::Scale;
use tpi_ir::{subs, Program, ProgramBuilder};

/// Builds the SPEC77 kernel.
#[must_use]
pub fn build(scale: Scale) -> Program {
    // At `Large` scale the latitude (DOALL) axis widens past 1024 while
    // the spectral order `m` shrinks, keeping the broadcast-table pattern
    // (every processor reads `P` every epoch) at around two million
    // events. The table-init DOALL stays `m` wide — it is one epoch of
    // setup, not part of the scalability question.
    let (lat, m, steps, inner) = match scale {
        Scale::Test => (16i64, 8i64, 2i64, 2i64),
        Scale::Paper => (128, 64, 6, 3),
        Scale::Large => (1024, 48, 3, 2),
    };
    let mut p = ProgramBuilder::new();
    let coef = p.shared("P", [m as u64, m as u64]);
    let field = p.shared("F", [lat as u64, m as u64]);
    let spec = p.shared("S", [lat as u64, m as u64]);
    // The two transforms live in their own procedures (as GLOOP/GWATER do
    // in the original): whole-program analysis must see through the calls
    // to keep the coefficient table's reuse window open.
    let legendre = p.proc("legendre", |f| {
        // Legendre transform: every processor reads the shared table.
        f.doall(0, lat - 1, |l, f| {
            f.serial(0, m - 1, |k, f| {
                f.serial(0, inner - 1, |j, f| {
                    f.store(
                        spec.at(subs![l, k]),
                        vec![field.at(subs![l, j]), coef.at(subs![k, j])],
                        3,
                    );
                });
            });
        });
    });
    let inverse = p.proc("inverse", |f| {
        // Inverse transform: row-local consumption of S.
        f.doall(0, lat - 1, |l, f| {
            f.serial(0, m - 2, |k, f| {
                f.store(
                    field.at(subs![l, k]),
                    vec![spec.at(subs![l, k]), spec.at(subs![l, k + 1])],
                    3,
                );
            });
        });
    });
    let main = p.proc("main", |f| {
        // Coefficient table first, then the field: the extra epoch between
        // the table's writer and its first reader keeps the Time-Read
        // window (distance 2) as wide as the loop period.
        f.doall(0, m - 1, |k, f| {
            f.serial(0, m - 1, |j, f| f.store(coef.at(subs![k, j]), vec![], 2));
        });
        f.doall(0, lat - 1, |l, f| {
            f.serial(0, m - 1, |k, f| f.store(field.at(subs![l, k]), vec![], 2));
        });
        f.serial(0, steps - 1, |_t, f| {
            f.call(legendre);
            f.call(inverse);
        });
    });
    p.finish(main).expect("SPEC77 is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_compiler::{mark_program, CompilerOptions};

    #[test]
    fn table_reads_marked_with_window_at_least_period() {
        let prog = build(Scale::Test);
        let m = mark_program(&prog, &CompilerOptions::default());
        // The loop body has 2 epochs; the coefficient reads must carry a
        // distance >= 2 so the verified-hit re-stamping can keep the table
        // alive from one step to the next.
        let s = m.summary();
        assert!(
            s.distance_histogram.keys().any(|&d| d >= 2),
            "need a >=2 window: {:?}",
            s.distance_histogram
        );
    }
}
