//! FLO52: transonic flow past an airfoil (multigrid Euler solver).
//!
//! The coherence-relevant structure modelled here:
//!
//! * five-point stencil sweeps whose halo reads cross the block boundaries
//!   between processors (the classic near-neighbour sharing pattern, with
//!   one-epoch producer/consumer distance);
//! * strided coarse-grid epochs every other step (multigrid), exercising
//!   the compiler's stride analysis on array sections;
//! * a periodic *serial* residual check that reads the grid on one
//!   processor and whose result every later epoch depends on.

use crate::Scale;
use tpi_ir::{subs, Cond, Program, ProgramBuilder};

/// Builds the FLO52 kernel.
#[must_use]
pub fn build(scale: Scale) -> Program {
    // `stride` thins the inner serial loops at `Large` scale so the DOALL
    // axis can reach 1024+ rows without a quadratic event blow-up; halo
    // reads still cross processor-block boundaries (the `i±1` terms are
    // on the doall axis, which stays dense).
    let (n, steps, stride) = match scale {
        Scale::Test => (16i64, 2i64, 1i64),
        Scale::Paper => (96, 4, 1),
        Scale::Large => (1056, 2, 16),
    };
    let mut p = ProgramBuilder::new();
    let w = p.shared("W", [n as u64, n as u64]);
    let w2 = p.shared("W2", [n as u64, n as u64]);
    let res = p.shared("RES", [steps as u64]);
    // The solver is organized as procedures, as the real code is: the
    // interprocedural analysis must propagate their side effects to keep
    // the reuse windows precise (the paper's Intra-vs-Full distinction).
    let stencil = p.proc("eulstep", |f| {
        // Fine-grid stencil: W2 <- stencil(W).
        f.doall(1, n - 2, |i, f| {
            f.serial_step(1, n - 2, stride, |j, f| {
                f.store(
                    w2.at(subs![i, j]),
                    vec![
                        w.at(subs![i - 1, j]),
                        w.at(subs![i + 1, j]),
                        w.at(subs![i, j - 1]),
                        w.at(subs![i, j + 1]),
                        w.at(subs![i, j]),
                    ],
                    4,
                );
            });
        });
        // Update: W <- smooth(W2).
        f.doall(1, n - 2, |i, f| {
            f.serial_step(1, n - 2, stride, |j, f| {
                f.store(
                    w.at(subs![i, j]),
                    vec![w2.at(subs![i, j]), w2.at(subs![i, j - 1])],
                    3,
                );
            });
        });
    });
    let coarse = p.proc("coarse", |f| {
        // Coarse-grid correction: stride-2 sections (scaled by the
        // large-scale thinning factor on the serial axis).
        f.doall_step(2, n - 3, 2, |i, f| {
            f.serial_step(2, n - 3, 2 * stride, |j, f| {
                f.store(
                    w.at(subs![i, j]),
                    vec![
                        w2.at(subs![i - 2, j]),
                        w2.at(subs![i + 2, j]),
                        w.at(subs![i, j]),
                    ],
                    4,
                );
            });
        });
    });
    let main = p.proc("main", |f| {
        f.doall(0, n - 1, |i, f| {
            f.serial_step(0, n - 1, stride, |j, f| {
                f.store(w.at(subs![i, j]), vec![], 2)
            });
        });
        f.serial(0, steps - 1, |t, f| {
            f.call(stencil);
            // Coarse-grid correction every other step.
            f.if_then(
                Cond::EveryN {
                    var: t,
                    modulus: 2,
                    phase: 1,
                },
                |f| {
                    f.call(coarse);
                },
            );
            // Serial residual check on one processor.
            f.serial(1, 8, |k, f| {
                f.store(
                    res.at(subs![t]),
                    vec![w.at(subs![k, k]), res.at(subs![t])],
                    2,
                );
            });
        });
    });
    p.finish(main).expect("FLO52 is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_compiler::{mark_program, CompilerOptions, MarkReason};
    use tpi_ir::{RefSite, StmtId};
    use tpi_trace::{generate_trace, TraceOptions};

    #[test]
    fn traces_cleanly() {
        let prog = build(Scale::Test);
        let marking = mark_program(&prog, &CompilerOptions::default());
        let trace = generate_trace(&prog, &marking, &TraceOptions::default()).unwrap();
        // init + steps * (2 or 3 doalls + serial residual) epochs.
        assert!(trace.epochs.len() > 2 * 3);
    }

    #[test]
    fn residual_reaccumulation_is_covered() {
        let prog = build(Scale::Test);
        let m = mark_program(&prog, &CompilerOptions::default());
        // Find the residual statement: its second read (RES(t)) follows the
        // statement's own write target pattern; first execution reads what
        // the same serial epoch wrote in earlier k-iterations — but the
        // coverage rule is conservative across serial-loop iterations, so
        // it stays marked. The W diagonal read must be marked (stencil
        // epochs wrote it one epoch ago).
        let s = m.summary();
        assert!(s.marked > 0);
        // At least one read is proven by task-local coverage elsewhere in
        // the suite; here just check there are short distances.
        assert!(
            s.distance_histogram.contains_key(&1),
            "{:?}",
            s.distance_histogram
        );
        let _ = (
            RefSite {
                stmt: StmtId(0),
                idx: 0,
            },
            MarkReason::Covered,
        );
    }
}
