//! MDG: molecular dynamics of water (extension workload).
//!
//! MDG is a Perfect Club code the paper's Section 5 machinery is made for:
//! its force loops accumulate into shared arrays through *lock-guarded
//! critical sections*. The synthetic kernel models:
//!
//! * a pair-force epoch reading neighbour positions across processor
//!   blocks;
//! * an accumulation epoch where every iteration enters a critical section
//!   and read-modify-writes a runtime-indexed bin of a shared accumulator —
//!   cross-iteration conflicts serialized by the lock, not by the epoch
//!   machinery (HSCD schemes must access the bins uncached);
//! * a local integration epoch and a serial statistics/reset epoch.
//!
//! This kernel is not part of the paper's six-benchmark suite
//! ([`Kernel::ALL`](crate::Kernel::ALL)); it is the
//! [`Kernel::EXTENDED`](crate::Kernel::EXTENDED) demonstration of the
//! paper's critical-section support.

use crate::Scale;
use tpi_ir::{subs, Program, ProgramBuilder};

/// Builds the MDG kernel.
#[must_use]
pub fn build(scale: Scale) -> Program {
    let (n, bins, steps) = match scale {
        Scale::Test => (256i64, 32u64, 2i64),
        Scale::Paper => (4096, 128, 4),
        // One-dimensional particle axis: widening `n` alone keeps the
        // force/integrate DOALLs far past 1024 iterations.
        Scale::Large => (16384, 256, 4),
    };
    let shift = n / 8; // two processor blocks at P=16
    let mut p = ProgramBuilder::new();
    let pos = p.shared("POS", [(n + shift) as u64]);
    let force = p.shared("FORCE", [n as u64]);
    let acc = p.shared("ACC", [bins]);
    let stats = p.shared("STATS", [steps as u64]);
    let lock = p.lock();
    let main = p.proc("main", |f| {
        f.doall(0, n + shift - 1, |i, f| {
            f.store(pos.at(subs![i]), vec![], 2)
        });
        f.doall(0, bins as i64 - 1, |b, f| {
            f.store(acc.at(subs![b]), vec![], 1)
        });
        f.serial(0, steps - 1, |t, f| {
            // Pair forces: neighbour positions two blocks away.
            f.doall(0, n - 1, |i, f| {
                f.store(
                    force.at(subs![i]),
                    vec![pos.at(subs![i]), pos.at(subs![i + shift])],
                    4,
                );
            });
            // Lock-guarded accumulation into runtime-indexed bins.
            let bin = f.opaque();
            f.doall(0, n - 1, |i, f| {
                f.critical(lock, |f| {
                    f.store(
                        acc.at(subs![bin]),
                        vec![acc.at(subs![bin]), force.at(subs![i])],
                        3,
                    );
                });
            });
            // Integrate positions locally.
            f.doall(0, n - 1, |i, f| {
                f.store(
                    pos.at(subs![i]),
                    vec![pos.at(subs![i]), force.at(subs![i])],
                    3,
                );
            });
            // Serial statistics over the bins.
            f.serial(0, bins as i64 - 1, |b, f| {
                f.store(
                    stats.at(subs![t]),
                    vec![acc.at(subs![b]), stats.at(subs![t])],
                    2,
                );
            });
        });
    });
    p.finish(main).expect("MDG is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_compiler::{mark_program, CompilerOptions};
    use tpi_trace::{generate_trace, Event, TraceOptions};

    #[test]
    fn critical_accumulation_is_race_free_under_the_lock() {
        let prog = build(Scale::Test);
        let marking = mark_program(&prog, &CompilerOptions::default());
        let trace = generate_trace(&prog, &marking, &TraceOptions::default())
            .expect("lock-serialized accumulation is not a race");
        assert!(trace.stats.lock_acquires >= 256 * 2);
        assert!(trace.stats.critical_writes >= 256 * 2);
    }

    #[test]
    fn critical_reads_are_marked_critical() {
        let prog = build(Scale::Test);
        let marking = mark_program(&prog, &CompilerOptions::default());
        let trace = generate_trace(&prog, &marking, &TraceOptions::default()).unwrap();
        let criticals = trace
            .epochs
            .iter()
            .flat_map(|e| e.per_proc.iter().flatten())
            .filter(|ev| {
                matches!(
                    ev,
                    Event::Read {
                        kind: tpi_mem::ReadKind::Critical,
                        ..
                    }
                )
            })
            .count();
        assert!(
            criticals > 0,
            "ACC reads inside the critical must be Critical"
        );
    }

    #[test]
    fn without_the_lock_it_races() {
        // The same accumulation outside a critical section must be rejected.
        let mut p = ProgramBuilder::new();
        let acc = p.shared("ACC", [8]);
        let main = p.proc("main", |f| {
            let bin = f.opaque();
            f.doall(0, 255, |_i, f| {
                f.store(acc.at(subs![bin]), vec![acc.at(subs![bin])], 2);
            });
        });
        let prog = p.finish(main).unwrap();
        let marking = mark_program(&prog, &CompilerOptions::default());
        assert!(generate_trace(&prog, &marking, &TraceOptions::default()).is_err());
    }
}
