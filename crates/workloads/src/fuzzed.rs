//! Adversarial workloads promoted from the `tpi-fuzz` corpus.
//!
//! Differential fuzzing (see `crates/fuzz`) surfaces generated kernels
//! whose *sharing patterns* stress the schemes far harder than the
//! Perfect-Club-like suite, even when every engine handles them
//! correctly. The three most discriminating patterns are promoted here
//! as named, scalable workloads so the experiment pipeline (and the
//! paper-style tables in `EXPERIMENTS.md`) can measure them:
//!
//! * [`false_share`] (`FSHARE`) — column-interleaved ping-pong writes:
//!   two alternating DOALL epochs write the even and odd words of one
//!   array while reading their just-written neighbours, so nearly every
//!   cache line is written by one processor and read-or-written by
//!   another within a line's lifetime. Maximizes the false-sharing miss
//!   class for line sizes above one word.
//! * [`long_reuse`] (`LDREUSE`) — a table read again only after many
//!   unrelated epochs: the reuse distance exceeds the hardware timetag
//!   range, so schemes that only count epochs in hardware pay for the
//!   gap — Tardis renews every expired lease, SC conservatively misses
//!   every read — while TPI's *compiler* proves the table was never
//!   re-written and keeps its hits. The sharpest separation between
//!   compiler-assisted and purely hardware timestamp schemes.
//! * [`migrate`] (`MIGRATE`) — a block-shifted read-modify-write sweep:
//!   each serial step the DOALL's footprint slides by one processor
//!   block, so dirty lines perpetually change owners (the three-hop
//!   dirty-remote fetch pattern). Maximizes true-sharing coherence
//!   misses.

use crate::Scale;
use tpi_ir::{subs, Program, ProgramBuilder};

/// Builds the FSHARE kernel (heavy false sharing).
#[must_use]
pub fn false_share(scale: Scale) -> Program {
    let (n, steps) = match scale {
        Scale::Test => (64i64, 3i64),
        Scale::Paper => (4096, 6),
        Scale::Large => (16384, 8),
    };
    let mut p = ProgramBuilder::new();
    let w = p.shared("W", [2 * n as u64 + 2]);
    let main = p.proc("main", |f| {
        // Define every word once so later reads are always fresh.
        f.doall(0, 2 * n + 1, |i, f| f.store(w.at(subs![i]), vec![], 1));
        f.serial(0, steps - 1, |_t, f| {
            // Even words: stride-2 writes interleave processors within
            // every line (for any line size > 1 word).
            f.doall(0, n, |i, f| {
                f.store(w.at(subs![i * 2]), vec![w.at(subs![i * 2])], 2);
            });
            // Odd words: each write shares its line with even words some
            // other processor just wrote, and the neighbour reads pull
            // those dirty lines straight back.
            f.doall(0, n - 1, |i, f| {
                f.store(
                    w.at(subs![i * 2 + 1]),
                    vec![w.at(subs![i * 2]), w.at(subs![i * 2 + 2])],
                    2,
                );
            });
        });
    });
    p.finish(main).expect("FSHARE is well-formed")
}

/// Builds the LDREUSE kernel (reuse distance beyond the timetag range).
#[must_use]
pub fn long_reuse(scale: Scale) -> Program {
    // The spacer loop contributes 2 parallel epochs per iteration; both
    // presets push the producer→consumer distance past the paper
    // machine's 8-bit timetag range (256 epochs).
    let (n, spacer_epochs) = match scale {
        Scale::Test => (64i64, 140i64),
        Scale::Paper => (1024, 160),
        // The spacer count must stay past the 8-bit timetag range (256
        // epochs at 2 per iteration); the table itself widens.
        Scale::Large => (2048, 140),
    };
    let mut p = ProgramBuilder::new();
    let table = p.shared("TABLE", [n as u64]);
    let a = p.shared("A", [n as u64]);
    let b = p.shared("B", [n as u64]);
    let main = p.proc("main", |f| {
        // The table is produced once, up front...
        f.doall(0, n - 1, |i, f| f.store(table.at(subs![i]), vec![], 2));
        f.doall(0, n - 1, |i, f| f.store(a.at(subs![i]), vec![], 1));
        // ...then a long run of unrelated ping-pong epochs ages every
        // cached copy past the timetag range.
        f.serial(0, spacer_epochs - 1, |_t, f| {
            f.doall(0, n - 1, |i, f| {
                f.store(b.at(subs![i]), vec![a.at(subs![i])], 2);
            });
            f.doall(0, n - 1, |i, f| {
                f.store(a.at(subs![i]), vec![b.at(subs![i])], 2);
            });
        });
        // The distant consumers: every processor re-reads its block of
        // the (never re-written, still perfectly valid) table.
        f.doall(0, n - 1, |i, f| {
            f.store(a.at(subs![i]), vec![table.at(subs![i]), a.at(subs![i])], 3);
        });
    });
    p.finish(main).expect("LDREUSE is well-formed")
}

/// Builds the MIGRATE kernel (perpetually migrating dirty lines).
#[must_use]
pub fn migrate(scale: Scale) -> Program {
    let (n, steps) = match scale {
        Scale::Test => (64i64, 8i64),
        Scale::Paper => (2048, 16),
        Scale::Large => (16384, 12),
    };
    let shift = n / 8; // one half processor block at P=16
    let mut p = ProgramBuilder::new();
    let m = p.shared("M", [(n + shift * steps) as u64]);
    let main = p.proc("main", |f| {
        f.doall(0, n + shift * steps - 1, |i, f| {
            f.store(m.at(subs![i]), vec![], 1)
        });
        // Each step the whole footprint slides by `shift`, so the words a
        // processor read-modify-writes were dirtied by a *different*
        // processor one epoch earlier: the canonical migratory-data,
        // three-hop dirty-remote pattern.
        f.serial(0, steps - 1, |t, f| {
            f.doall(0, n - 1, |i, f| {
                f.store(
                    m.at(subs![i + t * shift]),
                    vec![m.at(subs![i + t * shift])],
                    3,
                );
            });
        });
    });
    p.finish(main).expect("MIGRATE is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_compiler::{mark_program, CompilerOptions};
    use tpi_trace::{generate_trace, TraceOptions};

    fn trace_of(prog: &Program) -> tpi_trace::Trace {
        let marking = mark_program(prog, &CompilerOptions::default());
        generate_trace(prog, &marking, &TraceOptions::default()).expect("race-free")
    }

    #[test]
    fn false_share_interleaves_lines() {
        let t = trace_of(&false_share(Scale::Test));
        // init + steps * (even epoch + odd epoch)
        assert_eq!(t.stats.parallel_epochs, 1 + 3 * 2);
        assert!(t.stats.reads > 0);
    }

    #[test]
    fn long_reuse_spaces_producer_and_consumer() {
        let t = trace_of(&long_reuse(Scale::Test));
        assert_eq!(t.stats.parallel_epochs, 2 + 140 * 2 + 1);
    }

    #[test]
    fn migrate_slides_its_footprint() {
        let t = trace_of(&migrate(Scale::Test));
        assert_eq!(t.stats.parallel_epochs, 1 + 8);
    }
}
