//! TRFD: two-electron integral transformation.
//!
//! The real benchmark performs a sequence of matrix transformations over
//! integral tables. The coherence-relevant structure modelled here:
//!
//! * a first transform whose inner accumulation reads a *column* of the
//!   input (`X(k, j)` for all `k`) — data written by many different
//!   processors in the previous epoch;
//! * a second, transposed transform (`doall` over columns reading both
//!   `XIJ(i, j)` and `XIJ(j, i)`);
//! * accumulators stored through on every inner step — the **redundant
//!   writes** the paper calls out as TRFD's distinguishing cost under
//!   write-through TPI, and the target of the write-buffer-as-cache
//!   ablation (E12).

use crate::Scale;
use tpi_ir::{subs, Program, ProgramBuilder};

/// Builds the TRFD kernel.
#[must_use]
pub fn build(scale: Scale) -> Program {
    // `stride` thins the inner serial loops at `Large` scale so the DOALL
    // axis can reach 1024 without a quadratic event blow-up; the column
    // reads and the transposed second pass keep their cross-processor
    // character on the thinned grid.
    let (n, steps, k_inner, stride) = match scale {
        Scale::Test => (12i64, 2i64, 3i64, 1i64),
        Scale::Paper => (56, 5, 4, 1),
        Scale::Large => (1024, 2, 2, 32),
    };
    let mut p = ProgramBuilder::new();
    let x = p.shared("X", [n as u64, n as u64]);
    let xij = p.shared("XIJ", [n as u64, n as u64]);
    let v = p.shared("V", [n as u64]);
    let main = p.proc("main", |f| {
        // Initialization epochs.
        f.doall(0, n - 1, |i, f| {
            f.serial_step(0, n - 1, stride, |j, f| {
                f.store(x.at(subs![i, j]), vec![], 2)
            });
        });
        f.doall(0, n - 1, |i, f| f.store(v.at(subs![i]), vec![], 2));
        f.serial(0, steps - 1, |_t, f| {
            // First transform: XIJ(i,j) accumulates over X(k,j)*V(k); the
            // accumulator is stored through on every step (redundant
            // writes), and the X column reads cross processor blocks.
            f.doall(0, n - 1, |i, f| {
                f.serial_step(0, n - 1, stride, |j, f| {
                    f.serial(0, k_inner - 1, |k, f| {
                        f.store(
                            xij.at(subs![i, j]),
                            vec![x.at(subs![k, j]), v.at(subs![k])],
                            2,
                        );
                    });
                });
            });
            // Second transform, transposed: X(i,j) = f(XIJ(i,j), XIJ(j,i)).
            f.doall(0, n - 1, |j, f| {
                f.serial_step(0, n - 1, stride, |i, f| {
                    f.store(
                        x.at(subs![i, j]),
                        vec![xij.at(subs![i, j]), xij.at(subs![j, i])],
                        3,
                    );
                });
            });
        });
    });
    p.finish(main).expect("TRFD is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_compiler::{mark_program, CompilerOptions};
    use tpi_trace::{generate_trace, TraceOptions};

    #[test]
    fn has_redundant_writes() {
        let prog = build(Scale::Test);
        let marking = mark_program(&prog, &CompilerOptions::default());
        let trace = generate_trace(&prog, &marking, &TraceOptions::default()).unwrap();
        // Each XIJ word is written k_inner times per step: writes far
        // exceed distinct destinations.
        let distinct: std::collections::HashSet<u64> = trace
            .epochs
            .iter()
            .flat_map(|e| e.per_proc.iter().flatten())
            .filter_map(|ev| match ev {
                tpi_trace::Event::Write { addr, .. } => Some(addr.0),
                _ => None,
            })
            .collect();
        assert!(
            trace.stats.writes as usize > 2 * distinct.len(),
            "writes {} vs distinct {}",
            trace.stats.writes,
            distinct.len()
        );
    }

    #[test]
    fn transform_reads_are_marked_distance_one_or_two() {
        let prog = build(Scale::Test);
        let m = mark_program(&prog, &CompilerOptions::default());
        let s = m.summary();
        assert!(s.marked > 0);
        assert!(
            s.distance_histogram.keys().all(|&d| d <= 2),
            "TRFD dependences are short-range: {:?}",
            s.distance_histogram
        );
    }
}
