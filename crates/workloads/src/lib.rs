//! Perfect-Club-like synthetic kernels for the TPI coherence study.
//!
//! The paper evaluates six Perfect Club benchmarks parallelized by Polaris.
//! The Fortran sources and the Polaris infrastructure are not available to
//! this reproduction, so each benchmark is replaced by a synthetic kernel,
//! written in the `tpi-ir` representation, that mirrors the loop structure
//! and the *sharing pattern* that drives the original's coherence
//! behaviour (see `DESIGN.md` for the substitution argument):
//!
//! * [`Kernel::Trfd`] — integral transformation: column-direction reads,
//!   transposed second pass, and heavy **redundant writes** (accumulators
//!   stored through on every step) — the paper singles TRFD out for its
//!   write traffic under TPI.
//! * [`Kernel::Flo52`] — transonic-flow multigrid: five-point stencil
//!   sweeps with distance-1 producer/consumer reuse, strided coarse-grid
//!   epochs, and a periodic serial residual check.
//! * [`Kernel::Ocean`] — ocean simulation: row-local butterfly passes
//!   alternating with transposes whose column reads stride across every
//!   other processor's freshly written rows.
//! * [`Kernel::Qcd2`] — lattice gauge: block-shifted neighbour updates
//!   (migratory lines: dirty-remote three-hop fetches for the directory
//!   scheme) plus **compile-time-unanalyzable** gather reads that force
//!   conservative marking (the paper's `X(f(i))` case).
//! * [`Kernel::Spec77`] — spectral weather: a broadcast-read coefficient
//!   table (read-only after initialization) consumed by every processor in
//!   every epoch — the showcase for TPI's intertask locality over SC.
//! * [`Kernel::Arc2d`] — implicit-factorization ADI: alternating row
//!   (x-sweep) and column (y-sweep) passes; the column pass touches one
//!   word per line of every other processor's rows, the classic
//!   false-sharing / line-size-sensitivity pattern.

#![warn(missing_docs)]

pub mod arc2d;
pub mod flo52;
pub mod fuzzed;
pub mod mdg;
pub mod ocean;
pub mod qcd2;
pub mod spec77;
pub mod trfd;

use tpi_ir::Program;

/// Problem-size preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tiny instances for unit tests (thousands of events).
    Test,
    /// Evaluation instances (hundreds of thousands of events), sized so
    /// the shared data exceeds one 64 KB node cache.
    Paper,
    /// Large-machine instances (around a million events) for the 64–1024
    /// processor scalability study (EXPERIMENTS.md E24): every main
    /// compute DOALL has at least 1024 iterations so no processor idles
    /// at the top of the paper's range. The 2-D kernels widen their
    /// parallel axis and *stride* their inner serial loops instead of
    /// growing quadratically, which preserves each kernel's sharing
    /// pattern (cross-block stencils, transposes, false sharing) while
    /// keeping single cells around a few seconds of simulation.
    Large,
}

/// One benchmark of the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Two-electron integral transformation.
    Trfd,
    /// Transonic flow solver (multigrid Euler).
    Flo52,
    /// 2-D ocean basin simulation.
    Ocean,
    /// Lattice gauge theory (quantum chromodynamics).
    Qcd2,
    /// Spectral global weather model.
    Spec77,
    /// Implicit-factorization 2-D aerodynamics (ADI).
    Arc2d,
    /// Molecular dynamics with lock-guarded accumulation (extension
    /// workload, not part of the paper's six-benchmark suite).
    Mdg,
    /// Column-interleaved ping-pong writes maximizing false sharing
    /// (promoted from the fuzz corpus).
    FalseShare,
    /// A table re-read only after the timetag range is exhausted
    /// (promoted from the fuzz corpus).
    LongReuse,
    /// A block-shifted read-modify-write sweep with perpetually
    /// migrating dirty lines (promoted from the fuzz corpus).
    Migrate,
}

impl Kernel {
    /// The whole suite, in the paper's listing order.
    pub const ALL: [Kernel; 6] = [
        Kernel::Spec77,
        Kernel::Ocean,
        Kernel::Flo52,
        Kernel::Qcd2,
        Kernel::Trfd,
        Kernel::Arc2d,
    ];

    /// Extension workloads beyond the paper's suite: the Section 5
    /// critical-section demonstration plus the adversarial sharing
    /// patterns promoted from the fuzz corpus.
    pub const EXTENDED: [Kernel; 4] = [
        Kernel::Mdg,
        Kernel::FalseShare,
        Kernel::LongReuse,
        Kernel::Migrate,
    ];

    /// Benchmark name as the paper prints it.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Trfd => "TRFD",
            Kernel::Flo52 => "FLO52",
            Kernel::Ocean => "OCEAN",
            Kernel::Qcd2 => "QCD2",
            Kernel::Spec77 => "SPEC77",
            Kernel::Arc2d => "ARC2D",
            Kernel::Mdg => "MDG",
            Kernel::FalseShare => "FSHARE",
            Kernel::LongReuse => "LDREUSE",
            Kernel::Migrate => "MIGRATE",
        }
    }

    /// Builds the kernel's IR program at the given scale.
    ///
    /// # Examples
    ///
    /// ```
    /// use tpi_workloads::{Kernel, Scale};
    ///
    /// let program = Kernel::Flo52.build(Scale::Test);
    /// assert!(program.num_assigns > 0);
    /// assert_eq!(program.procs.len(), 3); // eulstep, coarse, main
    /// ```
    #[must_use]
    pub fn build(self, scale: Scale) -> Program {
        match self {
            Kernel::Trfd => trfd::build(scale),
            Kernel::Flo52 => flo52::build(scale),
            Kernel::Ocean => ocean::build(scale),
            Kernel::Qcd2 => qcd2::build(scale),
            Kernel::Spec77 => spec77::build(scale),
            Kernel::Arc2d => arc2d::build(scale),
            Kernel::Mdg => mdg::build(scale),
            Kernel::FalseShare => fuzzed::false_share(scale),
            Kernel::LongReuse => fuzzed::long_reuse(scale),
            Kernel::Migrate => fuzzed::migrate(scale),
        }
    }

    /// One-line description of what the synthetic kernel models.
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            Kernel::Trfd => "integral transform: transposed passes, redundant accumulator writes",
            Kernel::Flo52 => "multigrid Euler: 5-point stencils, strided coarse grids",
            Kernel::Ocean => "FFT rows + transposes: strided cross-processor consumption",
            Kernel::Qcd2 => "lattice updates: migratory lines + unanalyzable gathers",
            Kernel::Spec77 => "spectral transform: broadcast-read coefficient table",
            Kernel::Arc2d => "ADI sweeps: alternating row/column passes, false sharing",
            Kernel::Mdg => "molecular dynamics: lock-guarded force accumulation (Section 5)",
            Kernel::FalseShare => "fuzz-promoted: column-interleaved writes, maximal false sharing",
            Kernel::LongReuse => "fuzz-promoted: reuse distance past the timetag/lease range",
            Kernel::Migrate => "fuzz-promoted: block-shifted RMW sweep, migratory dirty lines",
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_compiler::{mark_program, CompilerOptions};
    use tpi_trace::{generate_trace, TraceOptions};

    #[test]
    fn all_kernels_build_and_validate() {
        for k in Kernel::ALL {
            let prog = k.build(Scale::Test);
            assert!(prog.num_assigns > 0, "{k} is empty");
            assert!(!k.name().is_empty());
            assert!(!k.description().is_empty());
        }
    }

    #[test]
    fn all_kernels_are_race_free_and_traceable() {
        for k in Kernel::ALL {
            let prog = k.build(Scale::Test);
            let marking = mark_program(&prog, &CompilerOptions::default());
            let trace = generate_trace(&prog, &marking, &TraceOptions::default())
                .unwrap_or_else(|e| panic!("{k}: {e}"));
            assert!(trace.stats.reads > 0, "{k} performs no shared reads");
            assert!(trace.stats.writes > 0, "{k} performs no shared writes");
            assert!(trace.stats.parallel_epochs > 1, "{k} is not parallel");
        }
    }

    #[test]
    fn all_kernels_race_free_under_every_schedule() {
        use tpi_trace::SchedulePolicy;
        for k in Kernel::ALL {
            let prog = k.build(Scale::Test);
            let marking = mark_program(&prog, &CompilerOptions::default());
            for policy in [
                SchedulePolicy::StaticBlock,
                SchedulePolicy::StaticCyclic,
                SchedulePolicy::Dynamic { chunk: 2 },
                SchedulePolicy::DynamicMigrating {
                    chunk: 4,
                    migrate_per_1024: 400,
                },
            ] {
                let opts = TraceOptions {
                    policy,
                    ..TraceOptions::default()
                };
                generate_trace(&prog, &marking, &opts)
                    .unwrap_or_else(|e| panic!("{k} under {policy}: {e}"));
            }
        }
    }

    #[test]
    fn extended_kernels_build_and_trace_race_free() {
        for k in Kernel::EXTENDED {
            let prog = k.build(Scale::Test);
            assert!(prog.num_assigns > 0, "{k} is empty");
            assert!(!k.description().is_empty());
            let marking = mark_program(&prog, &CompilerOptions::default());
            let trace = generate_trace(&prog, &marking, &TraceOptions::default())
                .unwrap_or_else(|e| panic!("{k}: {e}"));
            assert!(trace.stats.parallel_epochs > 1, "{k} is not parallel");
        }
    }

    #[test]
    fn markings_have_expected_character() {
        // SPEC77's broadcast table reads are marked (stale-able) but TPI
        // can keep them cached; QCD2 must contain conservative (distance-0
        // or opaque-driven) markings.
        let spec = Kernel::Spec77.build(Scale::Test);
        let ms = mark_program(&spec, &CompilerOptions::default()).summary();
        assert!(ms.marked > 0, "SPEC77 must have marked reads");
        let qcd = Kernel::Qcd2.build(Scale::Test);
        let mq = mark_program(&qcd, &CompilerOptions::default()).summary();
        assert!(mq.marked > 0);
    }

    #[test]
    fn paper_scale_is_larger_than_test_scale() {
        for k in [Kernel::Flo52, Kernel::Trfd] {
            let t = k.build(Scale::Test);
            let p = k.build(Scale::Paper);
            let tw: u64 = t.arrays.iter().map(tpi_mem::ArrayDecl::len_words).sum();
            let pw: u64 = p.arrays.iter().map(tpi_mem::ArrayDecl::len_words).sum();
            assert!(pw > 4 * tw, "{k}: paper scale should be much larger");
        }
    }

    /// Widest constant-bounded DOALL trip count anywhere in the program.
    fn max_doall_trip(prog: &tpi_ir::Program) -> i64 {
        fn walk(stmts: &[tpi_ir::Stmt], widest: &mut i64) {
            for s in stmts {
                match s {
                    tpi_ir::Stmt::Doall(l) => {
                        if l.lo.is_constant() && l.hi.is_constant() {
                            let trips = (l.hi.constant() - l.lo.constant()) / l.step + 1;
                            *widest = (*widest).max(trips);
                        }
                        walk(&l.body, widest);
                    }
                    tpi_ir::Stmt::Loop(l) => walk(&l.body, widest),
                    tpi_ir::Stmt::If(b) => {
                        walk(&b.then_body, widest);
                        walk(&b.else_body, widest);
                    }
                    tpi_ir::Stmt::Critical(c) => walk(&c.body, widest),
                    _ => {}
                }
            }
        }
        let mut widest = 0;
        for p in &prog.procs {
            walk(&p.body, &mut widest);
        }
        widest
    }

    #[test]
    fn large_scale_widens_every_kernel_to_1024_tasks() {
        // The scalability study (E24) runs up to 1024 processors; every
        // kernel's widest DOALL must provide at least one task per
        // processor or the big machines would idle by construction.
        for k in Kernel::ALL.into_iter().chain(Kernel::EXTENDED) {
            let prog = k.build(Scale::Large);
            assert!(
                max_doall_trip(&prog) >= 1024,
                "{k}: widest Large-scale DOALL has {} iterations",
                max_doall_trip(&prog)
            );
        }
    }

    #[test]
    fn large_scale_builds_and_validates() {
        for k in Kernel::ALL.into_iter().chain(Kernel::EXTENDED) {
            let prog = k.build(Scale::Large);
            assert!(prog.num_assigns > 0, "{k} is empty at Large scale");
        }
    }
}
